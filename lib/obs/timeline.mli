(** SSET timelines: fork/join thread intervals from partition history.

    The simulators record the partition in effect each time it changes
    (as [(cycle, ssets)] pairs).  {!reconstruct} turns that history into
    the intervals a human thinks in: "FUs {2,3} ran as one lockstep
    stream from cycle 3 to cycle 9".  An SSET whose membership survives
    a partition change keeps its interval open; any change of membership
    closes it (join) and opens successors (fork) — exactly the Figure 11
    fork/join story. *)

type interval = {
  members : int list;  (** FU members, ascending *)
  start_cycle : int;   (** first cycle the SSET was in effect *)
  stop_cycle : int;    (** exclusive: first cycle it no longer was *)
}

val reconstruct :
  final_cycle:int -> (int * int list list) list -> interval list
(** [reconstruct ~final_cycle history] with [history] in chronological
    order (each entry: the cycle a new partition took effect and its
    SSETs).  Intervals still open at the end close at [final_cycle].
    The result is sorted by [(start_cycle, members)].  An empty history
    yields no intervals. *)

val duration : interval -> int

val pp : Format.formatter -> interval list -> unit
(** One line per interval: [   3..9     {2,3}]. *)
