type t = {
  ring : Event.t Ring.t;
  trace : bool;
  registry : Metrics.t;
  (* preregistered handles: hooks never search the registry *)
  m_cycles : Metrics.counter;
  m_commits : Metrics.counter;
  m_cc : Metrics.counter;
  m_ss : Metrics.counter;
  m_partitions : Metrics.counter;
  m_faults : Metrics.counter;
  m_halts : Metrics.counter;
  m_dropped : Metrics.counter;  (* mirror of the ring's drop count *)
  m_fu_ops : Metrics.counter array;
  m_fu_live : Metrics.counter array;
  g_streams : Metrics.gauge;
  h_sset_width : Metrics.histogram;
  h_spin_streak : Metrics.histogram;
  h_barrier_wait : Metrics.histogram;
  h_commit_batch : Metrics.histogram;
  (* busy-wait streak tracking, per FU *)
  spin_pc : int array;  (* -1 = no open streak *)
  spin_start : int array;
  spin_sync : bool array;
  (* barrier-wait attribution: pc -> (entries, total waited) *)
  barriers : (int, int * int) Hashtbl.t;
  prof : Profile.t option;
  acct : Account.t option;
  crit : Critpath.t option;
  n_fus : int;
  mutable parts_rev : (int * int list list) list;
  mutable last_part : int list list;
  mutable final_cycle : int;
  mutable finished : bool;
}

let default_ring_capacity = 1 lsl 16

let default_n_regs = 256

let create ?(ring_capacity = default_ring_capacity) ?(trace = true)
    ?(profile = true) ?(account = true) ?(critpath = false)
    ?(n_regs = default_n_regs) ~n_fus ~code_len () =
  if n_fus < 1 || n_fus > 64 then
    invalid_arg "Sink.create: n_fus must be in [1, 64]";
  let registry = Metrics.create () in
  { ring = Ring.create ~capacity:ring_capacity ~dummy:Event.dummy;
    trace;
    registry;
    m_cycles = Metrics.counter registry "cycles";
    m_commits = Metrics.counter registry "commits";
    m_cc = Metrics.counter registry "cc_broadcasts";
    m_ss = Metrics.counter registry "ss_transitions";
    m_partitions = Metrics.counter registry "partition_changes";
    m_faults = Metrics.counter registry "faults_fired";
    m_halts = Metrics.counter registry "halts";
    m_dropped = Metrics.counter registry "events_dropped";
    m_fu_ops =
      Array.init n_fus (fun fu ->
        Metrics.counter registry (Printf.sprintf "fu%d/ops" fu));
    m_fu_live =
      Array.init n_fus (fun fu ->
        Metrics.counter registry (Printf.sprintf "fu%d/live_cycles" fu));
    g_streams = Metrics.gauge registry "live_streams";
    h_sset_width = Metrics.histogram registry "sset_width";
    h_spin_streak = Metrics.histogram registry "spin_streak";
    h_barrier_wait = Metrics.histogram registry "barrier_wait";
    h_commit_batch = Metrics.histogram registry "commit_batch";
    spin_pc = Array.make n_fus (-1);
    spin_start = Array.make n_fus 0;
    spin_sync = Array.make n_fus false;
    barriers = Hashtbl.create 16;
    prof = (if profile then Some (Profile.create ~n_fus ~code_len) else None);
    acct = (if account then Some (Account.create ~n_fus) else None);
    crit = (if critpath then Some (Critpath.create ~n_fus ~n_regs) else None);
    n_fus;
    parts_rev = [];
    last_part = [];
    final_cycle = 0;
    finished = false }

let n_fus t = t.n_fus

let emit t e = if t.trace then Ring.push t.ring e

(* ------------------------------------------------------------------ *)
(* Hooks *)

let on_fetch t ~cycle ~fu ~pc =
  Metrics.incr t.m_fu_live.(fu);
  (match t.prof with None -> () | Some p -> Profile.sample p ~fu ~pc);
  emit t (Event.Fetch { cycle; fu; pc })

let on_data_op t ~fu = Metrics.incr t.m_fu_ops.(fu)

let on_commit t ~cycle ~results =
  Metrics.add t.m_commits results;
  Metrics.observe t.h_commit_batch results;
  emit t (Event.Commit { cycle; results })

let on_cc t ~cycle ~fu ~value =
  Metrics.incr t.m_cc;
  emit t (Event.Cc_broadcast { cycle; fu; value })

let on_ss t ~cycle ~fu ~to_done =
  Metrics.incr t.m_ss;
  emit t (Event.Ss_transition { cycle; fu; to_done })

let close_streak t ~cycle fu =
  let pc = t.spin_pc.(fu) in
  if pc >= 0 then begin
    t.spin_pc.(fu) <- -1;
    let waited = cycle - t.spin_start.(fu) in
    Metrics.observe t.h_spin_streak waited;
    if t.spin_sync.(fu) then begin
      Metrics.observe t.h_barrier_wait waited;
      let entries, total =
        match Hashtbl.find_opt t.barriers pc with
        | Some (e, w) -> (e, w)
        | None -> (0, 0)
      in
      Hashtbl.replace t.barriers pc (entries + 1, total + waited);
      emit t (Event.Barrier_exit { cycle; fu; pc; waited })
    end
  end

let on_control t ~cycle ~fu ~pc ~spinning ~sync =
  if spinning then begin
    if t.spin_pc.(fu) <> pc then begin
      close_streak t ~cycle fu;
      t.spin_pc.(fu) <- pc;
      t.spin_start.(fu) <- cycle;
      t.spin_sync.(fu) <- sync;
      if sync then emit t (Event.Barrier_enter { cycle; fu; pc })
    end
  end
  else close_streak t ~cycle fu

let on_halt t ~cycle ~fu =
  close_streak t ~cycle fu;
  Metrics.incr t.m_halts;
  emit t (Event.Halt { cycle; fu })

let on_partition t ~cycle ~ssets =
  if ssets <> t.last_part then begin
    t.last_part <- ssets;
    t.parts_rev <- (cycle, ssets) :: t.parts_rev;
    Metrics.incr t.m_partitions;
    emit t (Event.Partition_change { cycle; ssets })
  end

let on_cycle_end t ~cycle ~live_streams =
  Metrics.incr t.m_cycles;
  Metrics.set_gauge t.g_streams live_streams;
  Metrics.observe t.h_sset_width live_streams;
  t.final_cycle <- cycle + 1

let on_fault t ~cycle ~kind ~target =
  Metrics.incr t.m_faults;
  emit t (Event.Fault_fired { cycle; kind; target })

let on_watchdog t ~cycle ~quiet =
  emit t (Event.Watchdog_window { cycle; quiet })

(* Per-slot cycle accounting (engine-classified; see {!Account}). *)
let on_slot t ~fu cls =
  match t.acct with None -> () | Some a -> Account.tally a ~fu cls

(* Critical-path hooks; each is one branch when critpath is off.  The
   engine additionally guards the decomposition work behind
   [wants_critpath]. *)
let wants_critpath t = t.crit <> None

let cp_bind_cc t ~fu ~j =
  match t.crit with None -> () | Some c -> Critpath.bind_cc c ~fu ~j

let cp_bind_ss t ~fu ~j =
  match t.crit with None -> () | Some c -> Critpath.bind_ss c ~fu ~j

let cp_bind_all t ~fu ~mask =
  match t.crit with None -> () | Some c -> Critpath.bind_all c ~fu ~mask

let cp_bind_any t ~fu ~done_mask =
  match t.crit with None -> () | Some c -> Critpath.bind_any c ~fu ~done_mask

let cp_issue t ~cycle ~fu ~pc ~r1 ~r2 ~w ~sets_cc ~latency =
  match t.crit with
  | None -> ()
  | Some c -> Critpath.issue c ~cycle ~fu ~pc ~r1 ~r2 ~w ~sets_cc ~latency

let cp_ss_mark t ~fu =
  match t.crit with None -> () | Some c -> Critpath.ss_mark c ~fu

let cp_end_cycle t =
  match t.crit with None -> () | Some c -> Critpath.end_cycle c

let finish t ~cycle =
  if not t.finished then begin
    t.finished <- true;
    t.final_cycle <- cycle;
    for fu = 0 to t.n_fus - 1 do
      close_streak t ~cycle fu
    done
  end

(* ------------------------------------------------------------------ *)
(* Results *)

let events t = Ring.to_list t.ring
let dropped_events t = Ring.dropped t.ring

(* The ring tracks its own drop count; mirror it into the registry on
   read so [events_dropped] travels with every metrics export/merge. *)
let metrics t =
  Metrics.set_counter t.m_dropped (dropped_events t);
  t.registry
let profile t = t.prof
let account t = t.acct
let critpath t = t.crit
let partition_history t = List.rev t.parts_rev
let final_cycle t = t.final_cycle

let timeline t =
  Timeline.reconstruct ~final_cycle:t.final_cycle (partition_history t)

let barrier_waits t =
  Hashtbl.fold (fun pc v acc -> (pc, v) :: acc) t.barriers []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let fu_utilisation t ~fu =
  let live = t.m_fu_live.(fu).Metrics.c_value in
  if live = 0 then 0.
  else float_of_int t.m_fu_ops.(fu).Metrics.c_value /. float_of_int live

let metrics_json t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\"schema\":\"ximd-metrics/1\",";
  Buffer.add_string buf
    (Printf.sprintf "\"final_cycle\":%d,\"events_dropped\":%d,"
       t.final_cycle (dropped_events t));
  Buffer.add_string buf "\"barriers\":[";
  List.iteri
    (fun i (pc, (entries, waited)) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"pc\":%d,\"entries\":%d,\"wait_cycles\":%d}" pc
           entries waited))
    (barrier_waits t);
  Buffer.add_string buf "],\"metrics\":";
  Buffer.add_string buf (Metrics.to_json (metrics t));
  Buffer.add_char buf '}';
  Buffer.contents buf

let reset t =
  Ring.clear t.ring;
  Metrics.reset t.registry;
  (match t.prof with None -> () | Some p -> Profile.reset p);
  (match t.acct with None -> () | Some a -> Account.reset a);
  (match t.crit with None -> () | Some c -> Critpath.reset c);
  Array.fill t.spin_pc 0 t.n_fus (-1);
  Array.fill t.spin_start 0 t.n_fus 0;
  Array.fill t.spin_sync 0 t.n_fus false;
  Hashtbl.reset t.barriers;
  t.parts_rev <- [];
  t.last_part <- [];
  t.final_cycle <- 0;
  t.finished <- false

let pp_summary fmt t =
  Format.pp_open_vbox fmt 0;
  Format.fprintf fmt "observability summary: %d cycles, %d events (%d \
                      dropped)@,"
    t.m_cycles.Metrics.c_value (Ring.length t.ring) (dropped_events t);
  for fu = 0 to t.n_fus - 1 do
    Format.fprintf fmt "  FU%-2d  %6d ops / %6d live cycles  (%.1f%%)@," fu
      t.m_fu_ops.(fu).Metrics.c_value t.m_fu_live.(fu).Metrics.c_value
      (100. *. fu_utilisation t ~fu)
  done;
  let h = t.h_sset_width in
  Format.fprintf fmt
    "  SSET width: mean %.2f  max %d@,"
    (Metrics.mean h) h.Metrics.h_max;
  let h = t.h_spin_streak in
  if h.Metrics.h_count > 0 then
    Format.fprintf fmt
      "  spin streaks: %d  mean %.1f  p99 %d  max %d cycles@,"
      h.Metrics.h_count (Metrics.mean h) (Metrics.quantile h 0.99)
      h.Metrics.h_max;
  (match barrier_waits t with
   | [] -> ()
   | waits ->
     Format.fprintf fmt "  barrier waits by address:@,";
     List.iter
       (fun (pc, (entries, waited)) ->
         Format.fprintf fmt "    %02x: %d entries, %d cycles waited@," pc
           entries waited)
       waits);
  Format.fprintf fmt "  partition changes: %d@,"
    t.m_partitions.Metrics.c_value;
  Format.pp_close_box fmt ()
