open Ximd_isa

type timing =
  | At of int
  | After of int

type port = {
  mutable input : (timing * Value.t) list;
  mutable last_consumed : int;             (* cycle of previous consumption *)
  mutable written : (int * Value.t) list;  (* reverse write log *)
}

type t = port array

let create ?(n_ports = 16) () =
  if n_ports <= 0 then invalid_arg "Ioport.create";
  Array.init n_ports (fun _ ->
    { input = []; last_consumed = 0; written = [] })

let n_ports t = Array.length t

let check t port what =
  if port < 0 || port >= Array.length t then
    invalid_arg (Printf.sprintf "Ioport.%s: port %d out of range" what port)

let script t ~port deliveries =
  check t port "script";
  List.iter
    (fun (timing, value) ->
      (match timing with
       | At c | After c ->
         if c < 0 then invalid_arg "Ioport.script: negative delivery time");
      if Value.equal value Value.zero then
        invalid_arg "Ioport.script: delivered values must be non-zero")
    deliveries;
  t.(port).input <- deliveries;
  t.(port).last_consumed <- 0

let ready_at port timing =
  match timing with
  | At cycle -> cycle
  | After gap -> port.last_consumed + gap

let read t ~fu ~cycle ~log port_no =
  if port_no < 0 || port_no >= Array.length t then begin
    Hazard.report log ~cycle (Hazard.Port_out_of_range { port = port_no; fu });
    Value.zero
  end
  else
    let port = t.(port_no) in
    match port.input with
    | (timing, value) :: rest when cycle >= ready_at port timing ->
      port.input <- rest;
      port.last_consumed <- cycle;
      value
    | _ -> Value.zero

let write t ~fu ~cycle ~log port_no value =
  if port_no < 0 || port_no >= Array.length t then
    Hazard.report log ~cycle (Hazard.Port_out_of_range { port = port_no; fu })
  else t.(port_no).written <- (cycle, value) :: t.(port_no).written

let reset t =
  Array.iter
    (fun port ->
      port.input <- [];
      port.last_consumed <- 0;
      port.written <- [])
    t

let output t ~port =
  check t port "output";
  List.rev t.(port).written

let pending t ~port =
  check t port "pending";
  List.length t.(port).input
