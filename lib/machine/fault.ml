type kind = Flip_ss | Flip_cc | Drop_write | Dup_write | Stuck_halt

type event = { at : int; kind : kind; target : int }

type t = {
  events : event array;  (* sorted by cycle, stable over the input order *)
  mutable cursor : int;
  mutable drop_mask : int;
  mutable dup_mask : int;
  mutable fired : event list;  (* reverse firing order *)
}

let create events =
  let events = Array.of_list events in
  Array.iter
    (fun e ->
      if e.at < 0 then invalid_arg "Fault.create: negative cycle";
      if e.target < 0 then invalid_arg "Fault.create: negative target")
    events;
  Array.stable_sort (fun a b -> Int.compare a.at b.at) events;
  { events; cursor = 0; drop_mask = 0; dup_mask = 0; fired = [] }

let begin_cycle t ~cycle ~apply =
  t.drop_mask <- 0;
  t.dup_mask <- 0;
  let n = Array.length t.events in
  while t.cursor < n && t.events.(t.cursor).at <= cycle do
    let e = t.events.(t.cursor) in
    t.cursor <- t.cursor + 1;
    t.fired <- e :: t.fired;
    match e.kind with
    | Drop_write -> t.drop_mask <- t.drop_mask lor (1 lsl e.target)
    | Dup_write -> t.dup_mask <- t.dup_mask lor (1 lsl e.target)
    | Flip_ss | Flip_cc | Stuck_halt -> apply e.kind e.target
  done

let drops t ~fu = t.drop_mask land (1 lsl fu) <> 0
let dups t ~fu = t.dup_mask land (1 lsl fu) <> 0

let fired t = List.rev t.fired
let fired_rev t = t.fired
let remaining t = Array.length t.events - t.cursor

let reset t =
  t.cursor <- 0;
  t.drop_mask <- 0;
  t.dup_mask <- 0;
  t.fired <- []

let kind_name = function
  | Flip_ss -> "ss"
  | Flip_cc -> "cc"
  | Drop_write -> "drop"
  | Dup_write -> "dup"
  | Stuck_halt -> "halt"

let kind_of_name = function
  | "ss" -> Some Flip_ss
  | "cc" -> Some Flip_cc
  | "drop" -> Some Drop_write
  | "dup" -> Some Dup_write
  | "halt" -> Some Stuck_halt
  | _ -> None

let all_kinds = [| Flip_ss; Flip_cc; Drop_write; Dup_write; Stuck_halt |]

let pp_event fmt e =
  Format.fprintf fmt "%s@@%d:%d" (kind_name e.kind) e.at e.target

let event_to_string e = Format.asprintf "%a" pp_event e

(* splitmix64 — a tiny, well-mixed, stateless-seedable PRNG; the whole
   schedule is a pure function of the seed. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let rand_below state bound =
  if bound <= 0 then 0
  else
    Int64.to_int (Int64.logand (splitmix64 state) 0x3FFFFFFFFFFFFFFFL)
    mod bound

let default_until = 10_000

let random_schedule ~seed ~n ?(until = default_until) ~n_fus () =
  if n < 0 then invalid_arg "Fault.random_schedule: negative count";
  if until <= 0 then invalid_arg "Fault.random_schedule: until must be > 0";
  if n_fus <= 0 then invalid_arg "Fault.random_schedule: n_fus must be > 0";
  let state = ref (Int64.of_int seed) in
  List.init n (fun _ ->
    let at = rand_below state until in
    let kind = all_kinds.(rand_below state (Array.length all_kinds)) in
    let target = rand_below state n_fus in
    { at; kind; target })

let parse ~n_fus spec =
  let ( let* ) = Result.bind in
  let int_field what s =
    match int_of_string_opt (String.trim s) with
    | Some v when v >= 0 -> Ok v
    | Some _ | None -> Error (Printf.sprintf "%s: bad %s %S" spec what s)
  in
  let parse_item item =
    match String.split_on_char ':' (String.trim item) with
    | "rand" :: rest -> (
      match rest with
      | [ seed; count ] | [ seed; count; _ ] ->
        let* seed = int_field "seed" seed in
        let* count = int_field "count" count in
        let* until =
          match rest with
          | [ _; _; u ] ->
            let* u = int_field "until" u in
            if u = 0 then Error (spec ^ ": until must be > 0") else Ok u
          | _ -> Ok default_until
        in
        Ok (random_schedule ~seed ~n:count ~until ~n_fus ())
      | _ -> Error (item ^ ": expected rand:SEED:COUNT[:UNTIL]"))
    | [ head; target ] -> (
      match String.index_opt head '@' with
      | None -> Error (item ^ ": expected KIND@CYCLE:TARGET")
      | Some i -> (
        let kind = String.sub head 0 i in
        let cycle = String.sub head (i + 1) (String.length head - i - 1) in
        match kind_of_name (String.lowercase_ascii (String.trim kind)) with
        | None -> Error (Printf.sprintf "%s: unknown fault kind %S" item kind)
        | Some kind ->
          let* at = int_field "cycle" cycle in
          let* target = int_field "target" target in
          if target >= n_fus then
            Error
              (Printf.sprintf "%s: target %d out of range (%d FUs)" item
                 target n_fus)
          else Ok [ { at; kind; target } ]))
    | _ -> Error (item ^ ": expected KIND@CYCLE:TARGET or rand:SEED:COUNT")
  in
  if String.trim spec = "" then Error "empty fault spec"
  else
    let rec go acc = function
      | [] -> Ok (List.concat (List.rev acc))
      | item :: rest ->
        let* events = parse_item item in
        go (events :: acc) rest
    in
    go [] (String.split_on_char ',' spec)
