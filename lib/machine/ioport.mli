(** Scripted I/O ports.

    Figure 12 of the paper motivates non-blocking synchronisation with
    two processes that each "read some data from an I/O port until the
    port returns a non-zero, valid value" — the ports are an
    unpredictable external interface.  The paper had real (or modelled)
    devices; we substitute deterministic scripts (DESIGN.md §3): every
    port carries a queue of deliveries.  A read before the head
    delivery's ready time returns zero ("not ready"); a read at or after
    it consumes the delivery and returns its value.  Scripted values
    must be non-zero, matching the polling convention.

    Delivery timing is either absolute ([At cycle]) or relative to the
    consumption of the previous delivery on the same port ([After
    cycles] — a device that needs time to produce its next datum after
    being read).  The relative form is what makes serialising two
    I/O-bound processes expensive and is used by the IOSYNC workload.

    Writes are logged with their cycle for later inspection. *)

open Ximd_isa

type timing =
  | At of int     (** ready at this absolute cycle *)
  | After of int  (** ready this many cycles after the previous delivery
                      on the port was consumed (or after cycle 0 for the
                      first delivery) *)

type t

val create : ?n_ports:int -> unit -> t
(** [n_ports] defaults to 16. *)

val n_ports : t -> int

val script : t -> port:int -> (timing * Value.t) list -> unit
(** [script t ~port deliveries] installs the input script for [port].
    Values must be non-zero; [At]/[After] arguments non-negative.
    @raise Invalid_argument otherwise, or if [port] is out of range. *)

val read : t -> fu:int -> cycle:int -> log:Hazard.log -> int -> Value.t
(** Poll the port.  Out-of-range ports report
    {!Hazard.Port_out_of_range} and return zero. *)

val write : t -> fu:int -> cycle:int -> log:Hazard.log -> int -> Value.t -> unit

val reset : t -> unit
(** Rewinds every port to the {!create} state: input scripts, consumption
    times and write logs are cleared.  Callers reusing a state must
    re-{!script} their ports afterwards (a consumed script cannot be
    rewound in place). *)

val output : t -> port:int -> (int * Value.t) list
(** The write log for [port], in write order, as (cycle, value) pairs.
    @raise Invalid_argument if [port] is out of range. *)

val pending : t -> port:int -> int
(** Number of scripted deliveries not yet consumed. *)
