open Ximd_isa

type fault = Division_by_zero

exception Fault of fault

let int_op f a b = Value.of_int32 (f (Value.to_int32 a) (Value.to_int32 b))

let float_op f a b =
  Value.of_float (f (Value.to_float a) (Value.to_float b))

let shift f a b =
  let amount = Int32.to_int (Value.to_int32 b) land 31 in
  Value.of_int32 (f (Value.to_int32 a) amount)

let eval_bin_exn (op : Opcode.binop) a b =
  match op with
  | Iadd -> int_op Int32.add a b
  | Isub -> int_op Int32.sub a b
  | Imult -> int_op Int32.mul a b
  | Idiv ->
    if Value.equal b Value.zero then raise (Fault Division_by_zero)
    else int_op Int32.div a b
  | Imod ->
    if Value.equal b Value.zero then raise (Fault Division_by_zero)
    else int_op Int32.rem a b
  | And -> int_op Int32.logand a b
  | Or -> int_op Int32.logor a b
  | Xor -> int_op Int32.logxor a b
  | Shl -> shift Int32.shift_left a b
  | Shr -> shift Int32.shift_right_logical a b
  | Sar -> shift Int32.shift_right a b
  | Fadd -> float_op ( +. ) a b
  | Fsub -> float_op ( -. ) a b
  | Fmult -> float_op ( *. ) a b
  | Fdiv -> float_op ( /. ) a b

let eval_bin op a b =
  match eval_bin_exn op a b with
  | v -> Ok v
  | exception Fault f -> Error f

let eval_un (op : Opcode.unop) a =
  match op with
  | Mov -> a
  | Ineg -> Value.of_int32 (Int32.neg (Value.to_int32 a))
  | Not -> Value.of_int32 (Int32.lognot (Value.to_int32 a))
  | Fneg -> Value.of_float (-.Value.to_float a)
  | Itof -> Value.of_float (Int32.to_float (Value.to_int32 a))
  | Ftoi -> Value.of_int32 (Int32.of_float (Value.to_float a))

let eval_cmp (op : Opcode.cmpop) a b =
  let ic f = f (Int32.compare (Value.to_int32 a) (Value.to_int32 b)) 0 in
  let fc f = f (compare (Value.to_float a) (Value.to_float b)) 0 in
  match op with
  | Eq -> ic ( = )
  | Ne -> ic ( <> )
  | Lt -> ic ( < )
  | Le -> ic ( <= )
  | Gt -> ic ( > )
  | Ge -> ic ( >= )
  | Feq -> fc ( = )
  | Fne -> fc ( <> )
  | Flt -> fc ( < )
  | Fle -> fc ( <= )
  | Fgt -> fc ( > )
  | Fge -> fc ( >= )
