(** Deterministic fault injection.

    A fault plan is a list of events, each firing on one cycle against
    one target, applied by the simulators at the top of the cycle (before
    fetch and condition evaluation) so an injected flip is visible to
    that cycle's branches:

    - {!Flip_ss}: invert FU [target]'s synchronisation signal
      (BUSY <-> DONE) — models a glitched SS broadcast wire (§2.2).
    - {!Flip_cc}: invert condition code [target] (an undefined CC is
      forced TRUE) — models a corrupted CC broadcast.
    - {!Drop_write}: every register/memory result FU [target] stages on
      that cycle is silently lost — models a dropped write-port transfer.
    - {!Dup_write}: every result FU [target] stages on that cycle is
      staged twice, which the hazard layer surfaces as a multiple-write
      event — models a double-clocked write port.
    - {!Stuck_halt}: FU [target] halts permanently {e without} raising
      its SS bit to DONE (unlike a normal halt, DESIGN.md §5) — the
      canonical deadlock-inducing failure for SS handshakes.

    Schedules are either scripted or pseudo-random from a seed
    (splitmix64), so every run of the same spec on the same program is
    bit-for-bit reproducible.

    Spec grammar (the CLI's [--inject] argument):
    {v
    SPEC  ::= ITEM ("," ITEM)*
    ITEM  ::= KIND "@" CYCLE ":" TARGET     one scripted event
            | "rand" ":" SEED ":" COUNT [":" UNTIL]
    KIND  ::= "ss" | "cc" | "drop" | "dup" | "halt"
    v}
    [rand:S:N[:U]] expands to [N] pseudo-random events seeded by [S] on
    cycles in [[0, U)] ([U] defaults to 10000). *)

type kind = Flip_ss | Flip_cc | Drop_write | Dup_write | Stuck_halt

type event = { at : int; kind : kind; target : int }

type t

val create : event list -> t
(** Build an injection session; events are sorted by cycle. *)

val parse : n_fus:int -> string -> (event list, string) result
(** Parse the spec grammar above, validating targets against [n_fus]. *)

val random_schedule :
  seed:int -> n:int -> ?until:int -> n_fus:int -> unit -> event list
(** [n] events on cycles in [[0, until)] (default 10000), deterministic
    in [seed]. *)

val begin_cycle : t -> cycle:int -> apply:(kind -> int -> unit) -> unit
(** Fire every event due at [cycle]: control faults ({!Flip_ss},
    {!Flip_cc}, {!Stuck_halt}) are handed to [apply]; {!Drop_write} and
    {!Dup_write} arm the per-cycle write masks queried by {!drops} and
    {!dups}. *)

val drops : t -> fu:int -> bool
(** Is FU [fu]'s write port dropping this cycle? *)

val dups : t -> fu:int -> bool
(** Is FU [fu]'s write port duplicating this cycle? *)

val fired : t -> event list
(** Events that have fired so far, in firing order. *)

val fired_rev : t -> event list
(** {!fired} newest first, without the reversal — shares the internal
    list, so per-cycle observers can peel off just-fired events without
    allocating. *)

val remaining : t -> int
(** Events not yet fired. *)

val reset : t -> unit
(** Rewinds the session to its {!create} state: the schedule cursor
    returns to the first event, the per-cycle write masks disarm and the
    fired log empties, so a reused state replays the identical fault
    schedule. *)

val kind_name : kind -> string
val pp_event : Format.formatter -> event -> unit
val event_to_string : event -> string
(** Round-trips through {!parse}: ["ss@12:3"]. *)
