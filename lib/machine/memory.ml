open Ximd_isa

type organisation =
  | Shared
  | Distributed of { n_fus : int }

(* Contents are paged and lazily allocated: workloads touch a small
   fraction of the 64K-word default address space, and allocating the
   whole flat array up front made [create] — and therefore every
   simulator run — pay ~0.5 MB of heap churn.  A page is allocated on
   first write; reads of an untouched page are zero (memory starts
   zeroed either way).  [no_page] is the shared placeholder, recognised
   by physical equality.

   Staged stores live in growable parallel arrays in issue order, so a
   store appends in O(1) without building assoc cells; commit groups
   duplicate addresses with a linear scan (the stage holds at most one
   store per FU per cycle, so the scan is tiny). *)

let page_bits = 10
let page_size = 1 lsl page_bits
let page_mask = page_size - 1
let no_page : Value.t array = [||]

type t = {
  organisation : organisation;
  words : int;
  pages : Value.t array array;
  mutable st_addr : int array;
  mutable st_fu : int array;
  mutable st_value : Value.t array;
  mutable st_len : int;
}

let initial_stage_capacity = 16

let create ?(organisation = Shared) ~words () =
  if words <= 0 then invalid_arg "Memory.create: words must be positive";
  (match organisation with
   | Shared -> ()
   | Distributed { n_fus } ->
     if n_fus <= 0 || words mod n_fus <> 0 then
       invalid_arg "Memory.create: words must divide evenly among FUs");
  let n_pages = (words + page_size - 1) / page_size in
  { organisation;
    words;
    pages = Array.make n_pages no_page;
    st_addr = Array.make initial_stage_capacity 0;
    st_fu = Array.make initial_stage_capacity 0;
    st_value = Array.make initial_stage_capacity Value.zero;
    st_len = 0 }

let words t = t.words
let organisation t = t.organisation

let peek t addr =
  let page = t.pages.(addr lsr page_bits) in
  if page == no_page then Value.zero else page.(addr land page_mask)

let poke t addr value =
  let i = addr lsr page_bits in
  let page = t.pages.(i) in
  if page != no_page then page.(addr land page_mask) <- value
  else if not (Value.equal value Value.zero) then begin
    let page = Array.make page_size Value.zero in
    t.pages.(i) <- page;
    page.(addr land page_mask) <- value
  end

(* An address is accessible to [fu] if it is in range and, under the
   distributed organisation, falls in that FU's bank. *)
let accessible t ~fu addr =
  addr >= 0
  && addr < t.words
  &&
  match t.organisation with
  | Shared -> true
  | Distributed { n_fus } ->
    let bank = t.words / n_fus in
    addr / bank = fu

let read t ~fu ~cycle ~log addr =
  if accessible t ~fu addr then peek t addr
  else begin
    Hazard.report log ~cycle (Hazard.Mem_out_of_bounds { addr; fu });
    Value.zero
  end

let grow_stage t =
  let cap = Array.length t.st_addr in
  let cap' = 2 * cap in
  let addr = Array.make cap' 0
  and fu = Array.make cap' 0
  and value = Array.make cap' Value.zero in
  Array.blit t.st_addr 0 addr 0 cap;
  Array.blit t.st_fu 0 fu 0 cap;
  Array.blit t.st_value 0 value 0 cap;
  t.st_addr <- addr;
  t.st_fu <- fu;
  t.st_value <- value

let stage_write t ~fu ~cycle ~log addr value =
  if accessible t ~fu addr then begin
    if t.st_len = Array.length t.st_addr then grow_stage t;
    let k = t.st_len in
    t.st_addr.(k) <- addr;
    t.st_fu.(k) <- fu;
    t.st_value.(k) <- value;
    t.st_len <- k + 1
  end
  else Hazard.report log ~cycle (Hazard.Mem_out_of_bounds { addr; fu })

let commit t ~cycle ~log =
  let len = t.st_len in
  t.st_len <- 0;
  for k = 0 to len - 1 do
    let addr = t.st_addr.(k) in
    if addr >= 0 then begin
      (* Any later store to the same address?  (Consumed entries are
         marked with -1.) *)
      let dup = ref false in
      for j = k + 1 to len - 1 do
        if t.st_addr.(j) = addr then dup := true
      done;
      if not !dup then poke t addr t.st_value.(k)
      else begin
        let fus_rev = ref [] and wfu = ref (-1) and wv = ref Value.zero in
        for j = k to len - 1 do
          if t.st_addr.(j) = addr then begin
            t.st_addr.(j) <- -1;
            let fu = t.st_fu.(j) in
            fus_rev := fu :: !fus_rev;
            (* highest-numbered FU wins, latest store on ties *)
            if fu >= !wfu then begin
              wfu := fu;
              wv := t.st_value.(j)
            end
          end
        done;
        Hazard.report log ~cycle
          (Hazard.Multiple_mem_write { addr; fus = List.rev !fus_rev });
        poke t addr !wv
      end
    end
  done

let staged_count t = t.st_len

(* Rewind to the [create] state.  Allocated pages are zeroed in place
   rather than dropped: a reused state keeps its working-set arenas. *)
let reset t =
  Array.iter
    (fun page ->
      if page != no_page then Array.fill page 0 page_size Value.zero)
    t.pages;
  t.st_len <- 0

let check_bounds t addr what =
  if addr < 0 || addr >= t.words then
    invalid_arg (Printf.sprintf "Memory.%s: address %d out of bounds" what addr)

let set t addr value =
  check_bounds t addr "set";
  poke t addr value

let get t addr =
  check_bounds t addr "get";
  peek t addr

let load_block t ~addr values =
  Array.iteri (fun i v -> set t (addr + i) v) values

let dump_block t ~addr ~len =
  Array.init len (fun i -> get t (addr + i))
