(** Processor memory.

    The research model assumes an idealised shared memory: "Each
    functional unit can read or write to memory every cycle.  All ports
    use a single shared address space.  Memory operations complete in one
    cycle.  Multiple writes to the same location in one cycle are
    undefined." (paper §2.3).  Addresses are 32-bit-word indices.

    Two organisations are provided:
    - {!shared}: the research model — any FU reaches any word.
    - {!distributed}: the hardware prototype's organisation (§4.3,
      "Distributed Memory (1MB per FU)") — the address space is divided
      into equal per-FU banks and an FU may only access its own bank;
      foreign accesses are out-of-bounds hazards.

    Reads observe start-of-cycle contents; writes are staged and
    committed at end of cycle, with multiple-write detection as for the
    register file.  Out-of-bounds accesses report a hazard; under the
    [Record] policy a failing read returns zero and a failing write is
    dropped. *)

open Ximd_isa

type organisation =
  | Shared
  | Distributed of { n_fus : int }

type t

val create : ?organisation:organisation -> words:int -> unit -> t
(** [words] is the total number of 32-bit words. *)

val words : t -> int
val organisation : t -> organisation

val read : t -> fu:int -> cycle:int -> log:Hazard.log -> int -> Value.t
(** [read t ~fu ~cycle ~log addr]. *)

val stage_write :
  t -> fu:int -> cycle:int -> log:Hazard.log -> int -> Value.t -> unit

val commit : t -> cycle:int -> log:Hazard.log -> unit

val staged_count : t -> int
(** Number of stores currently staged (and not yet committed). *)

val reset : t -> unit
(** Rewinds to the {!create} state — all words zero, the stage empty.
    Pages already allocated are zeroed in place rather than freed, so a
    reused state keeps its working-set arenas warm. *)

val set : t -> int -> Value.t -> unit
(** Direct write for initialisation; bounds-checked, raises
    [Invalid_argument]. *)

val get : t -> int -> Value.t
(** Direct read for result checking; raises [Invalid_argument]. *)

val load_block : t -> addr:int -> Value.t array -> unit
(** Initialise consecutive words starting at [addr]. *)

val dump_block : t -> addr:int -> len:int -> Value.t array
