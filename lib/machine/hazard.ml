type t =
  | Multiple_reg_write of { reg : Ximd_isa.Reg.t; fus : int list }
  | Multiple_mem_write of { addr : int; fus : int list }
  | Mem_out_of_bounds of { addr : int; fu : int }
  | Div_by_zero of { fu : int }
  | Undefined_cc of { cc : int; fu : int }
  | Fell_off_end of { fu : int; addr : int }
  | Port_out_of_range of { port : int; fu : int }

type event = { cycle : int; hazard : t }

exception Error of event

type policy = Raise | Record

type log = {
  policy : policy;
  mutable events : event list;  (* reverse order *)
  mutable count : int;
}

let create_log policy = { policy; events = []; count = 0 }

let report log ~cycle hazard =
  let event = { cycle; hazard } in
  match log.policy with
  | Raise -> raise (Error event)
  | Record ->
    log.events <- event :: log.events;
    log.count <- log.count + 1

let events log = List.rev log.events
let count log = log.count
let policy log = log.policy

let clear log =
  log.events <- [];
  log.count <- 0

let pp_fus fmt fus =
  Format.fprintf fmt "FUs %s" (String.concat "," (List.map string_of_int fus))

let pp fmt = function
  | Multiple_reg_write { reg; fus } ->
    Format.fprintf fmt "multiple writes to %a by %a" Ximd_isa.Reg.pp reg
      pp_fus fus
  | Multiple_mem_write { addr; fus } ->
    Format.fprintf fmt "multiple writes to M[%d] by %a" addr pp_fus fus
  | Mem_out_of_bounds { addr; fu } ->
    Format.fprintf fmt "FU%d accessed out-of-bounds M[%d]" fu addr
  | Div_by_zero { fu } -> Format.fprintf fmt "FU%d divided by zero" fu
  | Undefined_cc { cc; fu } ->
    Format.fprintf fmt "FU%d branched on undefined cc%d" fu cc
  | Fell_off_end { fu; addr } ->
    Format.fprintf fmt "FU%d fell off the end of its stream at %02x:" fu addr
  | Port_out_of_range { port; fu } ->
    Format.fprintf fmt "FU%d accessed invalid I/O port %d" fu port

let pp_event fmt { cycle; hazard } =
  Format.fprintf fmt "cycle %d: %a" cycle pp hazard

let to_string t = Format.asprintf "%a" pp t

let () =
  Printexc.register_printer (function
    | Error event -> Some (Format.asprintf "Hazard.Error (%a)" pp_event event)
    | _ -> None)
