(** Arithmetic and logic evaluation.

    One data operator per functional unit; "all data operations complete
    in one cycle.  Two data types are supported, 32-bit float and 32-bit
    integer" (paper §2.2).

    Integer semantics: 32-bit two's complement with wraparound; shift
    amounts are taken modulo 32 (only the low five bits of [b] are
    significant); division rounds toward zero.  Division or modulus by
    zero is a fault — the caller reports {!Hazard.Div_by_zero} and the
    documented recovery result is zero.

    Float semantics: operands are reinterpreted as IEEE-754 single
    precision, the operation is computed, and the result is rounded back
    to single precision, matching a 32-bit hardware datapath. *)

open Ximd_isa

type fault = Division_by_zero

exception Fault of fault

val eval_bin :
  Opcode.binop -> Value.t -> Value.t -> (Value.t, fault) result

val eval_bin_exn : Opcode.binop -> Value.t -> Value.t -> Value.t
(** Like {!eval_bin} but raises {!Fault} on a fault, so the non-faulting
    path (the simulator hot loop) allocates no [result]. *)

val eval_un : Opcode.unop -> Value.t -> Value.t

val eval_cmp : Opcode.cmpop -> Value.t -> Value.t -> bool
