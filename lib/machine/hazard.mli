(** Run-time hazards.

    The paper leaves several behaviours undefined — "multiple writes to
    the same location in one cycle are undefined" (§2.3) — and a faithful
    simulator must detect them rather than silently pick a semantics.
    Each hazard records the cycle and the functional units involved.
    The policy decides whether detection raises or merely records. *)

type t =
  | Multiple_reg_write of { reg : Ximd_isa.Reg.t; fus : int list }
      (** two or more FUs wrote the same register in one cycle *)
  | Multiple_mem_write of { addr : int; fus : int list }
      (** two or more FUs wrote the same memory word in one cycle *)
  | Mem_out_of_bounds of { addr : int; fu : int }
  | Div_by_zero of { fu : int }
  | Undefined_cc of { cc : int; fu : int }
      (** a branch condition read a condition code never set by a compare *)
  | Fell_off_end of { fu : int; addr : int }
      (** an FU branched past the end of its instruction stream *)
  | Port_out_of_range of { port : int; fu : int }

type event = { cycle : int; hazard : t }

exception Error of event

type policy =
  | Raise   (** raise {!Error} on the first hazard *)
  | Record  (** accumulate hazards in the log and continue with the
                documented recovery value (see each component) *)

type log

val create_log : policy -> log
val report : log -> cycle:int -> t -> unit
val events : log -> event list
(** Events in occurrence order. *)

val count : log -> int
val policy : log -> policy

val clear : log -> unit
(** Empties the log (the policy is retained) — for state reuse across
    runs. *)

val pp : Format.formatter -> t -> unit
val pp_event : Format.formatter -> event -> unit
val to_string : t -> string
