open Ximd_isa

(* Staging is flat arrays indexed by register number plus a stack of
   dirty indices, so [stage_write] and [commit] touch only the registers
   actually written this cycle and allocate nothing on the
   single-writer-per-register path.  [staged_fu.(i)] holds the winning
   (highest-numbered, latest on ties) FU, -1 when unstaged;
   [staged_fus.(i)] stays [] until a second write lands on [i] and then
   lists every writer, most recent first, for the hazard report. *)
type t = {
  values : Value.t array;
  staged_value : Value.t array;
  staged_fu : int array;
  staged_fus : int list array;
  dirty : int array;
  mutable n_dirty : int;
  mutable n_staged : int;
}

let create () =
  { values = Array.make Reg.count Value.zero;
    staged_value = Array.make Reg.count Value.zero;
    staged_fu = Array.make Reg.count (-1);
    staged_fus = Array.make Reg.count [];
    dirty = Array.make Reg.count 0;
    n_dirty = 0;
    n_staged = 0 }

let copy t =
  { values = Array.copy t.values;
    staged_value = Array.copy t.staged_value;
    staged_fu = Array.copy t.staged_fu;
    staged_fus = Array.copy t.staged_fus;
    dirty = Array.copy t.dirty;
    n_dirty = t.n_dirty;
    n_staged = t.n_staged }

let read t r = t.values.(Reg.index r)

let stage_write t ~fu r value =
  let i = Reg.index r in
  let w = t.staged_fu.(i) in
  if w < 0 then begin
    t.staged_fu.(i) <- fu;
    t.staged_value.(i) <- value;
    t.dirty.(t.n_dirty) <- i;
    t.n_dirty <- t.n_dirty + 1
  end
  else begin
    (t.staged_fus.(i) <-
       (match t.staged_fus.(i) with [] -> [ fu; w ] | l -> fu :: l));
    if fu >= w then begin
      t.staged_fu.(i) <- fu;
      t.staged_value.(i) <- value
    end
  end;
  t.n_staged <- t.n_staged + 1

(* Under the Raise policy a hazard report aborts the commit mid-way; the
   remaining staged entries must still be cleared so the file is usable
   afterwards (the old assoc-list implementation emptied the stage up
   front). *)
let clear_from t k n =
  for j = k to n - 1 do
    let i = t.dirty.(j) in
    t.staged_fu.(i) <- -1;
    t.staged_fus.(i) <- []
  done

let commit t ~cycle ~log =
  let n = t.n_dirty in
  t.n_dirty <- 0;
  t.n_staged <- 0;
  let k = ref 0 in
  try
    while !k < n do
      let i = t.dirty.(!k) in
      (match t.staged_fus.(i) with
       | [] ->
         t.staged_fu.(i) <- -1;
         t.values.(i) <- t.staged_value.(i)
       | writers ->
         t.staged_fu.(i) <- -1;
         t.staged_fus.(i) <- [];
         Hazard.report log ~cycle
           (Hazard.Multiple_reg_write
              { reg = Reg.make i; fus = List.rev writers });
         (* highest-numbered FU wins — tracked incrementally by
            stage_write *)
         t.values.(i) <- t.staged_value.(i));
      incr k
    done
  with e ->
    clear_from t (!k + 1) n;
    raise e

let staged_count t = t.n_staged

(* Rewind to the [create] state without reallocating the arrays. *)
let reset t =
  Array.fill t.values 0 (Array.length t.values) Value.zero;
  clear_from t 0 t.n_dirty;
  t.n_dirty <- 0;
  t.n_staged <- 0

let set t r value = t.values.(Reg.index r) <- value

let dump t = Array.copy t.values
