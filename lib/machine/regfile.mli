(** Global multi-ported register file.

    "The register file simultaneously supports two reads and one write
    per functional unit for a total of 16 reads and 8 writes per cycle"
    (paper §2.2).  The 2R/1W-per-FU port budget is guaranteed
    structurally by the parcel shapes ({!Ximd_isa.Parcel.reads} ≤ 2,
    {!Ximd_isa.Parcel.writes} ≤ 1), so this module only needs to enforce
    the end-of-cycle write semantics and detect the one genuinely
    undefined case: two FUs writing the same register in one cycle.

    Reads observe start-of-cycle values; writes are staged and committed
    by {!commit}.  On a multiple-write conflict under the [Record] policy
    the write of the highest-numbered FU wins (an arbitrary but
    deterministic resolution; the hazard is logged either way). *)

open Ximd_isa

type t

val create : unit -> t
(** All registers initialised to zero. *)

val copy : t -> t

val read : t -> Reg.t -> Value.t
(** Start-of-cycle value (staged writes are not visible). *)

val stage_write : t -> fu:int -> Reg.t -> Value.t -> unit

val commit : t -> cycle:int -> log:Hazard.log -> unit
(** Applies all staged writes and clears the stage.  Reports
    {!Hazard.Multiple_reg_write} for every register written by more than
    one FU. *)

val staged_count : t -> int
(** Number of currently staged writes (for port-pressure statistics). *)

val reset : t -> unit
(** Rewinds to the {!create} state — all registers zero, the stage
    empty — without reallocating the backing arrays (for state reuse
    across runs, see {!Ximd_core.State.reset}). *)

val set : t -> Reg.t -> Value.t -> unit
(** Direct write, bypassing staging.  For initialisation and tests. *)

val dump : t -> Value.t array
(** A snapshot of all registers, index = register number. *)
