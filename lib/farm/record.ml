module Core = Ximd_core

type status =
  | Finished of Core.Run.outcome
  | Deadline_exceeded of { deadline_ms : int }
  | Crashed of { exn : string; backtrace : string }
  | Rejected of { reason : string }
  | Dropped of { reason : string }

type stats = {
  cycles : int;
  data_ops : int;
  spin_slots : int;
  max_streams : int;
  commit_ops : int;
}

type t = {
  job : Job.t;
  status : status;
  attempts : int;
  stats : stats option;
  hazards : int;
  check : string option;
  regs : (Ximd_isa.Reg.t * Ximd_isa.Value.t) list;
}

let exit_code t =
  match t.status with
  | Finished outcome ->
    let code = Core.Run.exit_code outcome in
    if code = 0 && t.hazards > 0 then 5 else code
  | Deadline_exceeded _ -> 6
  | Crashed _ -> Core.Run.job_crashed_exit_code
  | Rejected _ -> 1
  | Dropped _ -> 130

(* One deterministic word per record, the campaign-telemetry outcome
   vocabulary.  Finer than exit codes (deadline_exceeded and
   budget_exceeded share code 6 but are different failures) and stable
   across runs, unlike the status payloads. *)
let class_label t =
  match t.status with
  | Finished outcome -> (
    match outcome with
    | Core.Run.Halted _ -> if t.hazards > 0 then "hazardous" else "ok"
    | Core.Run.Fuel_exhausted _ -> "fuel_exhausted"
    | Core.Run.Deadlocked _ -> "deadlocked"
    | Core.Run.Budget_exceeded _ -> "budget_exceeded")
  | Deadline_exceeded _ -> "deadline_exceeded"
  | Crashed _ -> "crashed"
  | Rejected _ -> "rejected"
  | Dropped _ -> "dropped"

let json_of_waiting (w : Core.Run.waiting) =
  Json.Obj
    [ ("fu", Json.Int w.fu);
      ("pc", Json.Int w.pc);
      ("cond", Json.String (Ximd_isa.Cond.to_string w.cond)) ]

let json_of_status = function
  | Finished (Core.Run.Halted { cycles }) ->
    Json.Obj [ ("kind", Json.String "halted"); ("cycles", Json.Int cycles) ]
  | Finished (Core.Run.Fuel_exhausted { cycles }) ->
    Json.Obj
      [ ("kind", Json.String "fuel_exhausted"); ("cycles", Json.Int cycles) ]
  | Finished (Core.Run.Deadlocked { cycles; spinning }) ->
    Json.Obj
      [ ("kind", Json.String "deadlocked");
        ("cycles", Json.Int cycles);
        ("spinning", Json.List (List.map json_of_waiting spinning)) ]
  | Finished (Core.Run.Budget_exceeded { cycles; budget }) ->
    Json.Obj
      [ ("kind", Json.String "budget_exceeded");
        ("cycles", Json.Int cycles);
        ("budget", Json.Int budget) ]
  | Deadline_exceeded { deadline_ms } ->
    Json.Obj
      [ ("kind", Json.String "deadline_exceeded");
        ("deadline_ms", Json.Int deadline_ms) ]
  | Crashed { exn; backtrace } ->
    Json.Obj
      [ ("kind", Json.String "crashed");
        ("exn", Json.String exn);
        ("backtrace", Json.String backtrace) ]
  | Rejected { reason } ->
    Json.Obj
      [ ("kind", Json.String "rejected"); ("reason", Json.String reason) ]
  | Dropped { reason } ->
    Json.Obj
      [ ("kind", Json.String "dropped"); ("reason", Json.String reason) ]

let json_of_stats s =
  Json.Obj
    [ ("cycles", Json.Int s.cycles);
      ("data_ops", Json.Int s.data_ops);
      ("spin_slots", Json.Int s.spin_slots);
      ("max_streams", Json.Int s.max_streams);
      ("commit_ops", Json.Int s.commit_ops) ]

let to_json t =
  Json.Obj
    (List.concat
       [ [ ("schema", Json.String "ximd-result/1");
           ("id", Json.String t.job.Job.id);
           ("index", Json.Int t.job.Job.index);
           ("model", Json.String (Job.model_name t.job.Job.model));
           ("seed", Json.Int t.job.Job.seed);
           ("status", json_of_status t.status);
           ("attempts", Json.Int t.attempts);
           ("exit_code", Json.Int (exit_code t)) ];
         (match t.stats with
          | None -> []
          | Some s -> [ ("stats", json_of_stats s) ]);
         [ ("hazards", Json.Int t.hazards) ];
         (match t.check with
          | None -> []
          | Some msg -> [ ("check", Json.String msg) ]);
         (if t.regs = [] then []
          else
            [ ( "regs",
                Json.Obj
                  (List.map
                     (fun (r, v) ->
                       ( Ximd_isa.Reg.to_string r,
                         Json.Int (Ximd_isa.Value.to_int v) ))
                     t.regs) ) ]);
         (* a crashed job echoes its spec so it can be replayed verbatim *)
         (match t.status with
          | Crashed _ -> [ ("job", Job.to_json t.job) ]
          | Finished _ | Deadline_exceeded _ | Rejected _ | Dropped _ -> [])
       ])

let to_json_string t = Json.to_string (to_json t)

(* ------------------------------------------------------------------ *)

type summary = {
  jobs : int;
  ok : int;
  hazardous : int;
  fuel_exhausted : int;
  deadlocked : int;
  budget_exceeded : int;
  crashed : int;
  rejected : int;
  dropped : int;
  check_failed : int;
  retried : int;
  max_exit_code : int;
}

let summarise records =
  List.fold_left
    (fun acc t ->
      let code = exit_code t in
      { jobs = acc.jobs + 1;
        ok = (acc.ok + if code = 0 then 1 else 0);
        hazardous = (acc.hazardous + if code = 5 then 1 else 0);
        fuel_exhausted = (acc.fuel_exhausted + if code = 3 then 1 else 0);
        deadlocked = (acc.deadlocked + if code = 4 then 1 else 0);
        budget_exceeded = (acc.budget_exceeded + if code = 6 then 1 else 0);
        crashed = (acc.crashed + if code = 7 then 1 else 0);
        rejected = (acc.rejected + if code = 1 then 1 else 0);
        dropped = (acc.dropped + if code = 130 then 1 else 0);
        check_failed = (acc.check_failed + if t.check <> None then 1 else 0);
        retried = (acc.retried + if t.attempts > 1 then 1 else 0);
        max_exit_code = max acc.max_exit_code code })
    { jobs = 0; ok = 0; hazardous = 0; fuel_exhausted = 0; deadlocked = 0;
      budget_exceeded = 0; crashed = 0; rejected = 0; dropped = 0;
      check_failed = 0; retried = 0; max_exit_code = 0 }
    records

(* [metrics] is a pre-rendered JSON object (the campaign's merged
   metrics registry) spliced in as a "metrics" field — passed as text so
   this module needs no dependency on the obs layer. *)
let summary_to_json_string ?metrics s =
  let metrics_field =
    match metrics with
    | None -> []
    | Some text -> (
      match Json.parse text with
      | Ok j -> [ ("metrics", j) ]
      | Error _ -> [])
  in
  Json.to_string
    (Json.Obj
       ([ ("schema", Json.String "ximd-summary/1");
         ("jobs", Json.Int s.jobs);
         ("ok", Json.Int s.ok);
         ("hazardous", Json.Int s.hazardous);
         ("fuel_exhausted", Json.Int s.fuel_exhausted);
         ("deadlocked", Json.Int s.deadlocked);
         ("budget_exceeded", Json.Int s.budget_exceeded);
         ("crashed", Json.Int s.crashed);
         ("rejected", Json.Int s.rejected);
         ("dropped", Json.Int s.dropped);
         ("check_failed", Json.Int s.check_failed);
          ("retried", Json.Int s.retried);
          ("max_exit_code", Json.Int s.max_exit_code) ]
       @ metrics_field))

let pp_summary fmt s =
  Format.fprintf fmt
    "%d jobs: %d ok, %d hazardous, %d fuel-exhausted, %d deadlocked, %d \
     budget-exceeded, %d crashed, %d rejected, %d dropped (%d check \
     failures, %d retried)"
    s.jobs s.ok s.hazardous s.fuel_exhausted s.deadlocked s.budget_exceeded
    s.crashed s.rejected s.dropped s.check_failed s.retried
