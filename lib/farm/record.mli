(** Result records (schema [ximd-result/1]) and campaign summaries
    (schema [ximd-summary/1]).

    One record per submitted job, always — a job that crashes the
    worker, blows its budget or gets dropped at shutdown still yields a
    record saying so.  Records for finished and rejected jobs contain
    only deterministic fields (no wall times, no domain identities), so
    a campaign's result stream is byte-identical across domain counts
    and across runs; {!Crashed} records embed an OCaml backtrace and are
    therefore the one status class excluded from committed goldens. *)

type status =
  | Finished of Ximd_core.Run.outcome
  | Deadline_exceeded of { deadline_ms : int }
      (** every attempt overran the job's wall-clock deadline *)
  | Crashed of { exn : string; backtrace : string }
      (** the run raised; the worker domain was recycled *)
  | Rejected of { reason : string }
      (** the spec never became a runnable job (parse/validation error,
          unreadable file, unknown workload, model/program mismatch) *)
  | Dropped of { reason : string }
      (** the farm shut down before the job ran (interrupt drain) *)

type stats = {
  cycles : int;
  data_ops : int;
  spin_slots : int;
  max_streams : int;
  commit_ops : int;
}

type t = {
  job : Job.t;
  status : status;
  attempts : int;
      (** run attempts consumed (1 + retries actually taken).  0 for
          {!Rejected} and {!Dropped}. *)
  stats : stats option;  (** present iff the job finished a run *)
  hazards : int;         (** hazards recorded by the final attempt *)
  check : string option;
      (** workload payloads: [None] check passed, [Some msg] it failed *)
  regs : (Ximd_isa.Reg.t * Ximd_isa.Value.t) list;
      (** the job's [dump_regs], read back after the final attempt *)
}

val exit_code : t -> int
(** The record's slot in the canonical {!Ximd_core.Run.exit_codes}
    table: finished outcomes map through {!Ximd_core.Run.exit_code}
    (with recorded hazards promoting a clean halt to 5),
    deadline-exceeded is 6, crashed is
    {!Ximd_core.Run.job_crashed_exit_code}, rejected is 1, and dropped
    is 130 (the SIGINT convention). *)

val class_label : t -> string
(** The record's outcome class as one deterministic word — [ok],
    [hazardous], [fuel_exhausted], [deadlocked], [budget_exceeded],
    [deadline_exceeded], [crashed], [rejected] or [dropped].  Finer
    than {!exit_code} (deadline and budget overruns share code 6) and
    free of run-dependent payloads, so campaign telemetry can count on
    it. *)

val to_json : t -> Json.t
val to_json_string : t -> string
(** One [ximd-result/1] line, no trailing newline. *)

type summary = {
  jobs : int;
  ok : int;               (** exit code 0 *)
  hazardous : int;        (** exit code 5 *)
  fuel_exhausted : int;
  deadlocked : int;
  budget_exceeded : int;  (** cycle budget and wall deadline *)
  crashed : int;
  rejected : int;
  dropped : int;
  check_failed : int;
  retried : int;          (** records whose [attempts] exceeded 1 *)
  max_exit_code : int;
}

val summarise : t list -> summary

val summary_to_json_string : ?metrics:string -> summary -> string
(** One [ximd-summary/1] line, no trailing newline.  [metrics], when
    given, must be a rendered JSON object (e.g. a campaign's merged
    {!Ximd_obs.Metrics.to_json}) and is embedded as a ["metrics"]
    field. *)

val pp_summary : Format.formatter -> summary -> unit
