module Core = Ximd_core

type payload =
  | Source of string
  | File of string
  | Workload of string

type t = {
  id : string;
  index : int;
  payload : payload;
  model : Core.Engine.model;
  seed : int;
  fault : string option;
  max_cycles : int option;
  budget : int option;
  deadline_ms : int option;
  retries : int;
  latency : int option;
  mem_words : int option;
  distributed : bool;
  ports : int option;
  sequencer : Core.Config.sequencer option;
  detect_deadlock : bool;
  reg_inits : (Ximd_isa.Reg.t * Ximd_isa.Value.t) list;
  mem_inits : (int * Ximd_isa.Value.t) list;
  dump_regs : Ximd_isa.Reg.t list;
  raw : string;
}

let model_name = function
  | Core.Engine.Per_fu -> "xsim"
  | Core.Engine.Global -> "vsim"
  | Core.Engine.Banked -> "t500"

let known_keys =
  [ "id"; "source"; "file"; "workload"; "model"; "seed"; "fault";
    "max_cycles"; "budget"; "deadline_ms"; "retries"; "latency";
    "mem_words"; "distributed"; "ports"; "sequencer"; "detect_deadlock";
    "regs"; "mem"; "dump_regs" ]

(* Each extractor reads one key; the whole validation short-circuits on
   the first diagnostic via let*. *)
let ( let* ) = Result.bind
let ( >>? ) r check = Result.bind r check

let opt_field json key convert what =
  match Json.member key json with
  | None -> Ok None
  | Some v -> (
    match convert v with
    | Some x -> Ok (Some x)
    | None -> Error (Printf.sprintf "key %S: expected %s" key what))

let int_field json key = opt_field json key Json.to_int "an integer"
let str_field json key = opt_field json key Json.to_str "a string"
let bool_field json key = opt_field json key Json.to_bool "a boolean"

let positive key = function
  | Some v when v < 1 ->
    Error (Printf.sprintf "key %S: must be positive (got %d)" key v)
  | v -> Ok v

let non_negative key = function
  | Some v when v < 0 ->
    Error (Printf.sprintf "key %S: must be non-negative (got %d)" key v)
  | v -> Ok v

let parse_regs json =
  match Json.member "regs" json with
  | None -> Ok []
  | Some (Json.Obj fields) ->
    List.fold_left
      (fun acc (name, v) ->
        let* acc = acc in
        match (Ximd_isa.Reg.of_string name, Json.to_int v) with
        | Some r, Some i -> Ok ((r, Ximd_isa.Value.of_int i) :: acc)
        | None, _ -> Error (Printf.sprintf "key \"regs\": bad register %S" name)
        | _, None ->
          Error (Printf.sprintf "key \"regs\": %s wants an integer" name))
      (Ok []) fields
    |> Result.map List.rev
  | Some _ -> Error "key \"regs\": expected an object of \"rN\": int"

let parse_mem json =
  match Json.member "mem" json with
  | None -> Ok []
  | Some (Json.Obj fields) ->
    List.fold_left
      (fun acc (addr, v) ->
        let* acc = acc in
        match (int_of_string_opt addr, Json.to_int v) with
        | Some a, Some i when a >= 0 ->
          Ok ((a, Ximd_isa.Value.of_int i) :: acc)
        | _ -> Error (Printf.sprintf "key \"mem\": bad entry %S" addr))
      (Ok []) fields
    |> Result.map List.rev
  | Some _ -> Error "key \"mem\": expected an object of \"ADDR\": int"

let parse_dump_regs json =
  match Json.member "dump_regs" json with
  | None -> Ok []
  | Some (Json.List items) ->
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        match Option.bind (Json.to_str item) Ximd_isa.Reg.of_string with
        | Some r -> Ok (r :: acc)
        | None -> Error "key \"dump_regs\": expected register names")
      (Ok []) items
    |> Result.map List.rev
  | Some _ -> Error "key \"dump_regs\": expected a list of register names"

let of_line ~index line =
  match Json.parse line with
  | Error e -> Error ("bad JSON: " ^ e)
  | Ok json -> (
    match json with
    | Json.Obj _ -> (
      match
        List.find_opt (fun k -> not (List.mem k known_keys)) (Json.keys json)
      with
      | Some k -> Error (Printf.sprintf "unknown key %S" k)
      | None ->
        let* id = str_field json "id" in
        let id =
          match id with Some id -> id | None -> Printf.sprintf "job-%d" index
        in
        let* source = str_field json "source" in
        let* file = str_field json "file" in
        let* workload = str_field json "workload" in
        let* payload =
          match (source, file, workload) with
          | Some s, None, None -> Ok (Source s)
          | None, Some f, None -> Ok (File f)
          | None, None, Some w -> Ok (Workload w)
          | None, None, None ->
            Error "missing payload: one of \"source\", \"file\", \"workload\""
          | _ ->
            Error
              "conflicting payload: give exactly one of \"source\", \
               \"file\", \"workload\""
        in
        let* model = str_field json "model" in
        let* model =
          match model with
          | None | Some "xsim" -> Ok Core.Engine.Per_fu
          | Some "vsim" -> Ok Core.Engine.Global
          | Some "t500" -> Ok Core.Engine.Banked
          | Some other ->
            Error
              (Printf.sprintf
                 "key \"model\": expected \"xsim\", \"vsim\" or \"t500\" \
                  (got %S)"
                 other)
        in
        let* seed = int_field json "seed" in
        let seed = Option.value seed ~default:0 in
        let* fault = str_field json "fault" in
        let* max_cycles =
          int_field json "max_cycles" >>? positive "max_cycles"
        in
        let* budget = int_field json "budget" >>? positive "budget" in
        let* deadline_ms =
          int_field json "deadline_ms" >>? non_negative "deadline_ms"
        in
        let* retries = int_field json "retries" >>? non_negative "retries" in
        let* latency = int_field json "latency" >>? positive "latency" in
        let* mem_words = int_field json "mem_words" >>? positive "mem_words" in
        let* ports = int_field json "ports" >>? positive "ports" in
        let retries = Option.value retries ~default:0 in
        let* distributed = bool_field json "distributed" in
        let distributed = Option.value distributed ~default:false in
        let* sequencer = str_field json "sequencer" in
        let* sequencer =
          match sequencer with
          | None -> Ok None
          | Some "research" -> Ok (Some Core.Config.Research)
          | Some "prototype" -> Ok (Some Core.Config.Prototype)
          | Some other ->
            Error
              (Printf.sprintf
                 "key \"sequencer\": expected \"research\" or \"prototype\" \
                  (got %S)"
                 other)
        in
        let* detect_deadlock = bool_field json "detect_deadlock" in
        let detect_deadlock = Option.value detect_deadlock ~default:true in
        let* reg_inits = parse_regs json in
        let* mem_inits = parse_mem json in
        let* dump_regs = parse_dump_regs json in
        Ok
          { id; index; payload; model; seed; fault; max_cycles; budget;
            deadline_ms; retries; latency; mem_words; distributed; ports;
            sequencer; detect_deadlock; reg_inits; mem_inits; dump_regs;
            raw = line })
    | _ -> Error "bad JSON: job spec must be an object")

let to_json t =
  let opt key v f = match v with None -> [] | Some x -> [ (key, f x) ] in
  let int i = Json.Int i in
  let payload_field =
    match t.payload with
    | Source s -> ("source", Json.String s)
    | File f -> ("file", Json.String f)
    | Workload w -> ("workload", Json.String w)
  in
  Json.Obj
    (List.concat
       [ [ ("id", Json.String t.id);
           payload_field;
           ("model", Json.String (model_name t.model));
           ("seed", Json.Int t.seed) ];
         opt "fault" t.fault (fun s -> Json.String s);
         opt "max_cycles" t.max_cycles int;
         opt "budget" t.budget int;
         opt "deadline_ms" t.deadline_ms int;
         [ ("retries", Json.Int t.retries) ];
         opt "latency" t.latency int;
         opt "mem_words" t.mem_words int;
         (if t.distributed then [ ("distributed", Json.Bool true) ] else []);
         opt "ports" t.ports int;
         (match t.sequencer with
          | None -> []
          | Some Core.Config.Research ->
            [ ("sequencer", Json.String "research") ]
          | Some Core.Config.Prototype ->
            [ ("sequencer", Json.String "prototype") ]);
         (if t.detect_deadlock then []
          else [ ("detect_deadlock", Json.Bool false) ]);
         (if t.reg_inits = [] then []
          else
            [ ( "regs",
                Json.Obj
                  (List.map
                     (fun (r, v) ->
                       ( Ximd_isa.Reg.to_string r,
                         Json.Int (Ximd_isa.Value.to_int v) ))
                     t.reg_inits) ) ]);
         (if t.mem_inits = [] then []
          else
            [ ( "mem",
                Json.Obj
                  (List.map
                     (fun (a, v) ->
                       (string_of_int a, Json.Int (Ximd_isa.Value.to_int v)))
                     t.mem_inits) ) ]);
         (if t.dump_regs = [] then []
          else
            [ ( "dump_regs",
                Json.List
                  (List.map
                     (fun r -> Json.String (Ximd_isa.Reg.to_string r))
                     t.dump_regs) ) ]) ])
