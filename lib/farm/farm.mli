(** The supervised run farm: simulator sessions behind a {!Pool}.

    Each worker domain owns a small cache of reusable
    {!Ximd_core.Session}s keyed by machine shape, so a sweep of many
    jobs over few configurations pays state construction a handful of
    times per domain.  Around each run the farm enforces the job's
    supervision spec:

    - {b cycle budget} ([budget]) via {!Ximd_core.Engine.run}'s budget
      limit — deterministic, lands in the record as
      [Budget_exceeded];
    - {b wall-clock deadline} ([deadline_ms]) via the engine's poll
      hook — an overrun aborts the attempt and, with [retries] left,
      re-runs it after a seed-deterministic backoff;
    - {b crash isolation} — an attempt that raises becomes a [Crashed]
      record carrying the exception, a backtrace and the job spec for
      replay, and the worker's session cache is rebuilt;
    - {b strict rejection} — an unparseable spec line, unreadable file,
      unknown workload or invalid machine shape becomes a [Rejected]
      record in the job's stream position.

    Hazard policy is forced to [Record] for every job (a batch run must
    never die on one job's hazard); recorded hazards surface as a count
    in the record and exit code 5.

    Result records reach [emit] in submission order whatever the domain
    count — see {!Pool}.

    {b Campaign telemetry.}  Pass [?obs] to observe the whole campaign:
    the farm installs a {!Pool.probe} and reports each job's lifecycle
    to the {!Ximd_obs.Farmobs} aggregator — session cache hits, retry
    attempts, the final outcome class ({!Record.class_label}) — and,
    for jobs that finished a run, folds the per-job slot taxonomy and
    metrics from an account-only {!Ximd_obs.Sink} attached to each
    session into the campaign aggregates.  Without [?obs] no sink is
    created and every instrumentation site is one [match] on [None] —
    the result stream is byte-identical either way. *)

type t

val create :
  ?domains:int ->
  ?queue_bound:int ->
  ?hook:(Job.t -> unit) ->
  ?obs:Ximd_obs.Farmobs.t ->
  emit:(Record.t -> unit) ->
  unit ->
  t
(** [hook] runs at the start of every job attempt on the worker domain —
    the test suite plants failures there; leave it unset otherwise.
    [emit] is called in submission order with the pool lock held (keep
    it cheap, don't call back into the farm). *)

val submit : t -> Job.t -> bool
(** [false] means the farm is interrupted/closed and the job was not
    accepted. *)

val submit_line : t -> string -> bool
(** Parses one [ximd-job/1] line and submits it; a malformed line is
    accepted as a pre-rejected job so its [Rejected] record still
    appears at the right stream position. *)

val interrupt : t -> unit
(** Graceful shutdown: queued jobs become [Dropped] records, in-flight
    jobs finish, the result stream stays complete. *)

val join : t -> unit
val crashes : t -> int

val run_list :
  ?domains:int ->
  ?queue_bound:int ->
  ?hook:(Job.t -> unit) ->
  ?obs:Ximd_obs.Farmobs.t ->
  Job.t list ->
  Record.t list * Record.summary
(** Convenience: run the jobs, collect the records in submission order,
    summarise. *)
