(** Minimal dependency-free JSON: enough to parse line-delimited job
    specs and print byte-stable result records.

    Objects preserve field order (parse order in, given order out), so
    printing is deterministic — the property the farm's golden result
    streams rely on.  Integers that fit an OCaml [int] parse as [Int];
    anything with a fraction or exponent parses as [Float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parses one JSON document.  Errors name the byte offset and what was
    expected; trailing non-whitespace after the document is an error. *)

val to_string : t -> string
(** Compact (no whitespace) rendering; object fields in list order;
    strings escaped per RFC 8259 with [\uXXXX] for control characters. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else or when absent. *)

val keys : t -> string list
(** Field names of an [Obj], in order; [[]] on anything else. *)

val to_int : t -> int option
(** [Int n] (and [Float f] when integral) as an int. *)

val to_str : t -> string option
val to_bool : t -> bool option
