(** Job specifications for the run farm.

    One job is one complete simulator run: a program (inline source, a
    file path, or a named workload), a machine shape, a seed, and the
    supervision limits the farm enforces around the run.  Jobs arrive as
    line-delimited JSON (schema [ximd-job/1]); {!of_line} validates
    strictly — unknown keys, malformed values and out-of-range machine
    shapes are structured errors, never exceptions — because a batch
    front-end must reject a bad line and keep going. *)

type payload =
  | Source of string    (** inline XIMD assembly ([source]) *)
  | File of string      (** path to an [.xasm] file ([file]) *)
  | Workload of string  (** a {!Ximd_workloads.Suite} name ([workload]) *)

type t = {
  id : string;          (** caller's name for the job; echoed in results *)
  index : int;          (** submission order; results are emitted in it *)
  payload : payload;
  model : Ximd_core.Engine.model;
      (** sequencing model ([model]: ["xsim"], ["vsim"] or ["t500"]).
          For a [Workload] payload, ["vsim"] selects the workload's VLIW
          variant; the default ["xsim"] selects its XIMD variant. *)
  seed : int;           (** retry-backoff derivation; echoed in results *)
  fault : string option;
      (** a {!Ximd_machine.Fault.parse} spec ([fault]) *)
  max_cycles : int option;   (** cycle fuel ([max_cycles]) *)
  budget : int option;       (** cycle budget below fuel ([budget]) *)
  deadline_ms : int option;  (** per-attempt wall-clock limit ([deadline_ms]) *)
  retries : int;        (** extra attempts after a transient failure *)
  latency : int option;      (** result latency ([latency]) *)
  mem_words : int option;
  distributed : bool;   (** distributed memory organisation *)
  ports : int option;
  sequencer : Ximd_core.Config.sequencer option;
      (** [sequencer]: ["research"] or ["prototype"] *)
  detect_deadlock : bool;    (** default [true] *)
  reg_inits : (Ximd_isa.Reg.t * Ximd_isa.Value.t) list;
      (** [regs]: object of ["rN" : int] *)
  mem_inits : (int * Ximd_isa.Value.t) list;
      (** [mem]: object of ["ADDR" : int] *)
  dump_regs : Ximd_isa.Reg.t list;
      (** [dump_regs]: registers to read back into the result record *)
  raw : string;         (** the original spec line, echoed on crashes *)
}

val of_line : index:int -> string -> (t, string) result
(** Parses and validates one [ximd-job/1] line.  Every diagnostic names
    the offending key; unknown keys are rejected. *)

val to_json : t -> Json.t
(** The job's spec as JSON (round-trips through {!of_line} up to key
    order) — embedded in crash records so a failing job can be replayed
    verbatim. *)

val model_name : Ximd_core.Engine.model -> string
