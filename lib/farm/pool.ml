(* One mutex guards everything: the queue, the reorder buffer and the
   emission cursor.  Workers hold it only to dequeue and to emit —
   simulator runs (the expensive part) happen outside the lock. *)

type probe = {
  p_enqueue : seq:int -> depth:int -> unit;
  p_dequeue : seq:int -> domain:int -> depth:int -> unit;
  p_emit : seq:int -> unit;
}

type ('ctx, 'job, 'res) t = {
  mutex : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  queue : (int * 'job) Queue.t;
  queue_bound : int;
  mutable next_seq : int;       (* next submission sequence number *)
  mutable next_emit : int;      (* next sequence number to emit *)
  pending : (int, 'res) Hashtbl.t;  (* reorder buffer *)
  mutable closed : bool;        (* no further submissions *)
  mutable interrupted : bool;
  mutable crashes : int;
  init : int -> 'ctx;
  work : 'ctx -> seq:int -> 'job -> 'res;
  crashed : seq:int -> 'job -> exn:string -> backtrace:string -> 'res;
  dropped : seq:int -> 'job -> 'res;
  emit : 'res -> unit;
  probe : probe option;
  mutable workers : unit Domain.t array;
  mutable joined : bool;
}

(* Called with the lock held.  Results emit strictly in sequence order;
   a result whose predecessors are still running parks in [pending].
   The probe fires after [emit] so an observer counting emissions sees
   the record already in the stream.  Probe callbacks never take the
   pool lock (documented contract), so pool-lock -> observer-lock is
   the only ordering that occurs. *)
let stash t seq res =
  Hashtbl.replace t.pending seq res;
  let rec flush () =
    match Hashtbl.find_opt t.pending t.next_emit with
    | None -> ()
    | Some res ->
      let seq = t.next_emit in
      Hashtbl.remove t.pending seq;
      t.next_emit <- seq + 1;
      t.emit res;
      (match t.probe with None -> () | Some p -> p.p_emit ~seq);
      flush ()
  in
  flush ()

let worker t index =
  let ctx = ref (t.init index) in
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.not_empty t.mutex
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mutex
    else begin
      let seq, job = Queue.pop t.queue in
      (match t.probe with
       | None -> ()
       | Some p -> p.p_dequeue ~seq ~domain:index ~depth:(Queue.length t.queue));
      Condition.signal t.not_full;
      Mutex.unlock t.mutex;
      let res =
        try t.work !ctx ~seq job
        with exn ->
          let backtrace = Printexc.get_backtrace () in
          let exn = Printexc.to_string exn in
          (* the context may be mid-mutation; rebuild it before the next
             job rather than trust it *)
          ctx := t.init index;
          Mutex.lock t.mutex;
          t.crashes <- t.crashes + 1;
          Mutex.unlock t.mutex;
          t.crashed ~seq job ~exn ~backtrace
      in
      Mutex.lock t.mutex;
      stash t seq res;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create ?(domains = 1) ?(queue_bound = 256) ?probe ~init ~work ~crashed
    ~dropped ~emit () =
  if domains < 1 then invalid_arg "Pool.create: domains must be positive";
  if domains > 64 then invalid_arg "Pool.create: at most 64 domains";
  if queue_bound < 1 then
    invalid_arg "Pool.create: queue_bound must be positive";
  (* The requested count is honoured even beyond the core count: a
     determinism test needs 4 real domains on a 1-core CI runner, and
     silently degrading to fewer would hide exactly the interleavings
     it exists to exercise. *)
  let t =
    { mutex = Mutex.create ();
      not_full = Condition.create ();
      not_empty = Condition.create ();
      queue = Queue.create ();
      queue_bound;
      next_seq = 0;
      next_emit = 0;
      pending = Hashtbl.create 64;
      closed = false;
      interrupted = false;
      crashes = 0;
      init;
      work;
      crashed;
      dropped;
      emit;
      probe;
      workers = [||];
      joined = false }
  in
  t.workers <- Array.init domains (fun i -> Domain.spawn (fun () -> worker t i));
  t

let submit t job =
  Mutex.lock t.mutex;
  while
    Queue.length t.queue >= t.queue_bound && not t.closed && not t.interrupted
  do
    Condition.wait t.not_full t.mutex
  done;
  if t.closed || t.interrupted then begin
    Mutex.unlock t.mutex;
    false
  end
  else begin
    let seq = t.next_seq in
    Queue.add (seq, job) t.queue;
    t.next_seq <- seq + 1;
    (match t.probe with
     | None -> ()
     | Some p -> p.p_enqueue ~seq ~depth:(Queue.length t.queue));
    Condition.signal t.not_empty;
    Mutex.unlock t.mutex;
    true
  end

let interrupt t =
  Mutex.lock t.mutex;
  if not t.interrupted then begin
    t.interrupted <- true;
    (* drain: queued jobs keep their sequence slots, so the dropped
       records interleave at the right places in the result stream *)
    Queue.iter (fun (seq, job) -> stash t seq (t.dropped ~seq job)) t.queue;
    Queue.clear t.queue;
    Condition.broadcast t.not_full;
    Condition.broadcast t.not_empty
  end;
  Mutex.unlock t.mutex

let join t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  let workers = if t.joined then [||] else t.workers in
  t.joined <- true;
  Mutex.unlock t.mutex;
  Array.iter Domain.join workers;
  assert (Hashtbl.length t.pending = 0)

let crashes t =
  Mutex.lock t.mutex;
  let n = t.crashes in
  Mutex.unlock t.mutex;
  n
