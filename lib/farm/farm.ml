module Core = Ximd_core
module M = Ximd_machine
module Obs = Ximd_obs

(* Raised from the engine's poll hook when an attempt overruns its
   wall-clock deadline; never escapes [run_job]. *)
exception Wall_deadline

(* ------------------------------------------------------------------ *)
(* Per-domain context: a bounded cache of reusable sessions, keyed by
   machine shape, and one watchdog.  Rebuilt wholesale after a crash.
   With campaign telemetry on, each cached session carries its own
   account-only sink (reset by the session at every run), so a finished
   job's slot taxonomy and metrics can be folded into the campaign. *)

let session_cache_cap = 8

type ctx = {
  mutable sessions :
    ((Core.Config.t * Core.Engine.model)
    * (Core.Session.t * Obs.Sink.t option))
    list;
  mutable sinks : ((int * int) * Obs.Sink.t) list;
      (* account-only sinks keyed by (n_fus, code_len) — the only
         dimensions that size a sink.  A domain runs jobs one at a
         time and the session resets its sink at every run, so jobs
         whose sessions share a shape can share a sink; this keeps
         sink construction off the per-job path when every job is a
         session-cache miss (distinct seeds). *)
  watchdog : Core.Watchdog.t;
  workloads : Ximd_workloads.Workload.t list Lazy.t;
      (* Suite.all builds every workload (programs, data, checkers);
         amortise it per domain instead of paying it per job *)
  telemetry : bool;
}

let make_ctx ~telemetry _index =
  { sessions = [];
    sinks = [];
    watchdog = Core.Watchdog.create ();
    workloads = lazy (Ximd_workloads.Suite.all ());
    telemetry }

(* Account-only sink: no event ring traffic, no hot-PC sampling — per
   the farm-throughput bench rows the whole-campaign overhead must stay
   within 1.1x, and slot accounting is one array increment per fu×cycle
   slot.  [code_len] only sizes the (disabled) profiler. *)
let new_sink ctx ~config ~program =
  if not ctx.telemetry then None
  else begin
    let n_fus = config.Core.Config.n_fus in
    let code_len = Core.Program.length program in
    let key = (n_fus, code_len) in
    match List.assoc_opt key ctx.sinks with
    | Some sink -> Some sink
    | None ->
      (* trace:false never pushes the ring, so a 1-slot ring avoids
         the default 64Ki allocation. *)
      let sink =
        Obs.Sink.create ~ring_capacity:1 ~trace:false ~profile:false
          ~account:true ~n_fus ~code_len ()
      in
      ctx.sinks <- (key, sink) :: ctx.sinks;
      Some sink
  end

(* Fault-free jobs share sessions (the program swaps per run); a job
   with a fault plan gets a one-shot session, since the schedule is
   baked in at session creation.  Returns the session's sink and
   whether the cache served it. *)
let session_for ctx ~config ~model ~faults program =
  match faults with
  | Some faults ->
    let sink = new_sink ctx ~config ~program in
    (Core.Session.create ~config ~faults ?obs:sink ~model program, sink, false)
  | None -> (
    let key = (config, model) in
    match List.assoc_opt key ctx.sessions with
    | Some (session, sink) -> (session, sink, true)
    | None ->
      let sink = new_sink ctx ~config ~program in
      let session = Core.Session.create ~config ?obs:sink ~model program in
      let keep =
        List.filteri (fun i _ -> i < session_cache_cap - 1) ctx.sessions
      in
      ctx.sessions <- (key, (session, sink)) :: keep;
      (session, sink, false))

(* ------------------------------------------------------------------ *)
(* Payload resolution: job spec -> program + config + setup + check.
   Everything that can go wrong here is the submitter's fault, so it
   returns [Error reason] (-> Rejected), never raises. *)

type resolved = {
  r_program : Core.Program.t;
  r_config : Core.Config.t;
  r_setup : Core.State.t -> unit;
  r_check : (Core.State.t -> (unit, string) result) option;
}

let apply_inits (job : Job.t) (state : Core.State.t) =
  List.iter (fun (r, v) -> M.Regfile.set state.regs r v) job.Job.reg_inits;
  List.iter (fun (a, v) -> Core.State.mem_set state a v) job.Job.mem_inits

(* The job's machine-shape overrides on top of a base configuration.
   Hazards are always recorded: a batch run reports per-job hazard
   counts instead of dying on the first hazardous job. *)
let override_config (job : Job.t) (base : Core.Config.t) =
  { base with
    Core.Config.hazard_policy = M.Hazard.Record;
    max_cycles =
      Option.value job.Job.max_cycles ~default:base.Core.Config.max_cycles }

let config_of_program (job : Job.t) program =
  let n_fus = Core.Program.n_fus program in
  match
    Core.Config.make ~n_fus ~hazard_policy:M.Hazard.Record
      ?max_cycles:job.Job.max_cycles ?result_latency:job.Job.latency
      ?mem_words:job.Job.mem_words ?n_ports:job.Job.ports
      ?sequencer:job.Job.sequencer
      ?mem_organisation:
        (if job.Job.distributed then
           Some (M.Memory.Distributed { n_fus })
         else None)
      ()
  with
  | config -> Ok config
  | exception Invalid_argument msg -> Error msg

let resolve ctx (job : Job.t) =
  match job.Job.payload with
  | Job.Source text -> (
    match Ximd_asm.Source.parse text with
    | Error e -> Error (Format.asprintf "source: %a" Ximd_asm.Source.pp_error e)
    | Ok program ->
      Result.map
        (fun config ->
          { r_program = program;
            r_config = config;
            r_setup = apply_inits job;
            r_check = None })
        (config_of_program job program))
  | Job.File path -> (
    match Ximd_asm.Source.parse_file path with
    | Error e ->
      Error (Format.asprintf "%s: %a" path Ximd_asm.Source.pp_error e)
    | Ok program ->
      Result.map
        (fun config ->
          { r_program = program;
            r_config = config;
            r_setup = apply_inits job;
            r_check = None })
        (config_of_program job program))
  | Job.Workload name -> (
    let workloads = Lazy.force ctx.workloads in
    match
      List.find_opt
        (fun (w : Ximd_workloads.Workload.t) -> w.name = name)
        workloads
    with
    | None ->
      Error
        (Printf.sprintf "unknown workload %S (have: %s)" name
           (String.concat ", "
              (List.map
                 (fun (w : Ximd_workloads.Workload.t) -> w.name)
                 workloads)))
    | Some w -> (
      let variant =
        match job.Job.model with
        | Core.Engine.Global -> (
          match w.vliw with
          | Some v -> Ok v
          | None ->
            Error (Printf.sprintf "workload %S has no VLIW variant" name))
        | Core.Engine.Per_fu | Core.Engine.Banked -> Ok w.ximd
      in
      match variant with
      | Error _ as e -> e
      | Ok v ->
        Ok
          { r_program = v.Ximd_workloads.Workload.program;
            r_config = override_config job v.Ximd_workloads.Workload.config;
            r_setup =
              (fun state ->
                v.Ximd_workloads.Workload.setup state;
                apply_inits job state);
            r_check = Some v.Ximd_workloads.Workload.check }))

(* ------------------------------------------------------------------ *)
(* Retry backoff: deterministic in (seed, attempt) via splitmix64, so a
   re-run of the same campaign retries on the same schedule.  Capped at
   a quarter second — the point is to let a transient load spike pass,
   not to stall the worker. *)

let splitmix64 seed =
  let z = Int64.add seed 0x9E3779B97F4A7C15L in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let backoff_s ~seed ~attempt =
  let h = splitmix64 (Int64.of_int ((seed * 1_000_003) + attempt)) in
  let jitter_ms = Int64.to_int (Int64.logand h 63L) in
  let base_ms = 20 * attempt in
  float_of_int (min 250 (base_ms + jitter_ms)) /. 1000.

(* ------------------------------------------------------------------ *)
(* Campaign telemetry plumbing.  Every record path funnels through
   [completed], so the observer sees exactly one on_complete per job
   whatever its fate; sink merging happens only for records that
   finished a run — a timed-out or rejected attempt leaves partial,
   timing-dependent tallies in the sink that must not pollute the
   deterministic campaign aggregates. *)

let quality_of label =
  match label with
  | "ok" -> Obs.Span.Good
  | "crashed" | "rejected" | "dropped" -> Obs.Span.Bad
  | _ -> Obs.Span.Suspect

let outcome_of (record : Record.t) =
  let label = Record.class_label record in
  Obs.Span.outcome ~label ~quality:(quality_of label)

let completed ?obs ~seq ?sink ?n_fus (record : Record.t) =
  (match obs with
   | None -> ()
   | Some o ->
     Obs.Farmobs.on_complete o ~seq ~id:record.Record.job.Job.id
       ~result:(outcome_of record) ~attempts:record.Record.attempts
       ?cycles:
         (Option.map (fun (s : Record.stats) -> s.Record.cycles)
            record.Record.stats)
       ?n_fus ();
     match (record.Record.status, sink) with
     | Record.Finished _, Some sink ->
       (match Obs.Sink.account sink with
        | Some acct -> Obs.Farmobs.merge_account o acct
        | None -> ());
       Obs.Farmobs.merge_metrics o (Obs.Sink.metrics sink)
     | _ -> ());
  record

(* ------------------------------------------------------------------ *)

let run_job ?hook ?obs ?(seq = -1) ctx (job : Job.t) =
  (match hook with None -> () | Some f -> f job);
  let rejected reason =
    completed ?obs ~seq
      { Record.job;
        status = Record.Rejected { reason };
        attempts = 0;
        stats = None;
        hazards = 0;
        check = None;
        regs = [] }
  in
  match resolve ctx job with
  | Error reason -> rejected reason
  | Ok { r_program; r_config; r_setup; r_check } -> (
    let faults =
      match job.Job.fault with
      | None -> Ok None
      | Some spec -> (
        match
          M.Fault.parse ~n_fus:r_config.Core.Config.n_fus spec
        with
        | Ok events -> Ok (Some (M.Fault.create events))
        | Error msg -> Error ("fault: " ^ msg))
    in
    match faults with
    | Error reason -> rejected reason
    | Ok faults -> (
      match
        session_for ctx ~config:r_config ~model:job.Job.model ~faults
          r_program
      with
      | exception Invalid_argument msg ->
        (* model/program structural mismatch (e.g. a non-consistent
           program under vsim) is a rejection, not a crash *)
        rejected msg
      | session, sink, cache_hit ->
        (match obs with
         | None -> ()
         | Some o -> Obs.Farmobs.on_session_ready o ~seq ~cache_hit);
        let n_fus = r_config.Core.Config.n_fus in
        let watchdog =
          if job.Job.detect_deadlock then Some ctx.watchdog else None
        in
        let attempt_once () =
          (match watchdog with
           | Some w -> Core.Watchdog.reset w
           | None -> ());
          let poll =
            match job.Job.deadline_ms with
            | None -> None
            | Some ms ->
              let deadline =
                Unix.gettimeofday () +. (float_of_int ms /. 1000.)
              in
              Some
                (fun () ->
                  if Unix.gettimeofday () >= deadline then
                    raise Wall_deadline)
          in
          Core.Session.run ?watchdog ?budget:job.Job.budget ?poll
            ~program:r_program ~setup:r_setup session
        in
        let rec attempt n =
          match attempt_once () with
          | outcome -> (Record.Finished outcome, n)
          | exception Invalid_argument msg ->
            (* some model/program mismatches surface only when the run
               starts (e.g. a bank-inconsistent program under t500);
               they are spec errors, not crashes *)
            (Record.Rejected { reason = msg }, 0)
          | exception Wall_deadline ->
            if n <= job.Job.retries then begin
              (match obs with
               | None -> ()
               | Some o -> Obs.Farmobs.on_retry o ~seq ~attempt:n);
              Unix.sleepf (backoff_s ~seed:job.Job.seed ~attempt:n);
              attempt (n + 1)
            end
            else
              ( Record.Deadline_exceeded
                  { deadline_ms = Option.get job.Job.deadline_ms },
                n )
          (* any other exception escapes to the pool boundary: the
             worker's session cache is rebuilt and the job becomes a
             Crashed record *)
        in
        let status, attempts = attempt 1 in
        (match status with
         | Record.Deadline_exceeded _ | Record.Rejected _ ->
           (* a timed-out attempt stops mid-run (partial stats and
              registers are timing-dependent) and a run-time rejection
              never ran, so neither record carries state *)
           completed ?obs ~seq ?sink
             { Record.job;
               status;
               attempts;
               stats = None;
               hazards = 0;
               check = None;
               regs = [] }
         | _ ->
           let state = Core.Session.state session in
           let stats = state.Core.State.stats in
           let check =
             match r_check with
             | None -> None
             | Some check -> (
               match check state with Ok () -> None | Error msg -> Some msg)
           in
           completed ?obs ~seq ?sink ~n_fus
             { Record.job;
               status;
               attempts;
               stats =
                 Some
                   { Record.cycles = stats.Core.Stats.cycles;
                     data_ops = stats.Core.Stats.data_ops;
                     spin_slots = stats.Core.Stats.spin_slots;
                     max_streams = stats.Core.Stats.max_streams;
                     commit_ops = stats.Core.Stats.commit_ops };
               hazards = List.length (Core.State.hazards state);
               check;
               regs =
                 List.map
                   (fun r -> (r, M.Regfile.read state.Core.State.regs r))
                   job.Job.dump_regs })))

(* ------------------------------------------------------------------ *)
(* The farm: a pool of [ctx] workers running [run_job], with rejection
   and drop records built here so the pool stays generic. *)

type item =
  | Run of Job.t
  | Pre_rejected of Job.t * string
      (* the spec line never parsed; flows through the pool so its
         record keeps its stream position *)

type t = {
  pool : (ctx, item, Record.t) Pool.t;
  mutable lines : int;  (* submit_line's index counter (producer-side) *)
}

let rejected job reason =
  { Record.job;
    status = Record.Rejected { reason };
    attempts = 0;
    stats = None;
    hazards = 0;
    check = None;
    regs = [] }

let create ?domains ?queue_bound ?hook ?obs ~emit () =
  let work ctx ~seq = function
    | Run job -> run_job ?hook ?obs ~seq ctx job
    | Pre_rejected (job, reason) ->
      completed ?obs ~seq (rejected job reason)
  in
  let crashed ~seq item ~exn ~backtrace =
    let job =
      match item with Run job | Pre_rejected (job, _) -> job
    in
    completed ?obs ~seq
      { Record.job;
        status = Record.Crashed { exn; backtrace };
        attempts = 1;
        stats = None;
        hazards = 0;
        check = None;
        regs = [] }
  in
  let dropped ~seq item =
    let job =
      match item with Run job | Pre_rejected (job, _) -> job
    in
    completed ?obs ~seq
      { Record.job;
        status = Record.Dropped { reason = "farm interrupted before run" };
        attempts = 0;
        stats = None;
        hazards = 0;
        check = None;
        regs = [] }
  in
  let probe =
    Option.map
      (fun o ->
        { Pool.p_enqueue = (fun ~seq ~depth -> Obs.Farmobs.on_enqueue o ~seq ~depth);
          p_dequeue =
            (fun ~seq ~domain ~depth ->
              Obs.Farmobs.on_dequeue o ~seq ~domain ~depth);
          p_emit = (fun ~seq -> Obs.Farmobs.on_emit o ~seq) })
      obs
  in
  { pool =
      Pool.create ?domains ?queue_bound ?probe
        ~init:(make_ctx ~telemetry:(obs <> None))
        ~work ~crashed ~dropped ~emit ();
    lines = 0 }

let submit t job = Pool.submit t.pool (Run job)

(* A line that fails to parse still needs a Job.t to hang its record
   on: a placeholder carrying the raw line for replay. *)
let placeholder_job ~index raw =
  { Job.id = Printf.sprintf "line-%d" (index + 1);
    index;
    payload = Job.Source "";
    model = Core.Engine.Per_fu;
    seed = 0;
    fault = None;
    max_cycles = None;
    budget = None;
    deadline_ms = None;
    retries = 0;
    latency = None;
    mem_words = None;
    distributed = false;
    ports = None;
    sequencer = None;
    detect_deadlock = true;
    reg_inits = [];
    mem_inits = [];
    dump_regs = [];
    raw }

let submit_line t line =
  let index = t.lines in
  t.lines <- t.lines + 1;
  match Job.of_line ~index line with
  | Ok job -> Pool.submit t.pool (Run job)
  | Error reason ->
    Pool.submit t.pool (Pre_rejected (placeholder_job ~index line, reason))

let interrupt t = Pool.interrupt t.pool
let join t = Pool.join t.pool
let crashes t = Pool.crashes t.pool

let run_list ?domains ?queue_bound ?hook ?obs jobs =
  let acc = ref [] in
  let farm =
    create ?domains ?queue_bound ?hook ?obs
      ~emit:(fun r -> acc := r :: !acc)
      ()
  in
  List.iter (fun job -> ignore (submit farm job)) jobs;
  join farm;
  let records = List.rev !acc in
  (records, Record.summarise records)
