type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- Parsing ----------------------------------------------------------- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "expected hex digit"
  in
  let parse_u16 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v =
      (hex_digit s.[!pos] lsl 12)
      lor (hex_digit s.[!pos + 1] lsl 8)
      lor (hex_digit s.[!pos + 2] lsl 4)
      lor hex_digit s.[!pos + 3]
    in
    pos := !pos + 4;
    v
  in
  (* UTF-8 encode a code point into [buf]. *)
  let add_code_point buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "truncated escape";
         let c = s.[!pos] in
         advance ();
         match c with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           let hi = parse_u16 () in
           let cp =
             if hi >= 0xD800 && hi <= 0xDBFF then begin
               (* surrogate pair *)
               if
                 !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
               then begin
                 pos := !pos + 2;
                 let lo = parse_u16 () in
                 if lo < 0xDC00 || lo > 0xDFFF then
                   fail "invalid low surrogate";
                 0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
               end
               else fail "unpaired high surrogate"
             end
             else hi
           in
           add_code_point buf cp
         | _ -> fail "unknown escape");
        go ()
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let integral =
      not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text)
    in
    if integral then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail "bad integer"
    else
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec next () =
          items := parse_value () :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            next ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        next ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec next () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          fields := (key, value) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            next ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        next ();
        Obj (List.rev !fields)
      end
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
    Error (Printf.sprintf "offset %d: %s" at msg)

(* --- Printing ---------------------------------------------------------- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      (* %.17g round-trips doubles; trim is not worth the instability *)
      Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | String s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\":";
          go item)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- Accessors --------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let keys = function
  | Obj fields -> List.map fst fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> []

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | Null | Bool _ | Float _ | String _ | List _ | Obj _ -> None

let to_str = function
  | String s -> Some s
  | Null | Bool _ | Int _ | Float _ | List _ | Obj _ -> None

let to_bool = function
  | Bool b -> Some b
  | Null | Int _ | Float _ | String _ | List _ | Obj _ -> None
