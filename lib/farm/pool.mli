(** Domain-sharded supervised job pool.

    The pool is generic over jobs, results and per-worker context; the
    farm layers simulator sessions on top.  Its contracts are the
    robustness properties the batch front-end depends on:

    - {b one result per job} — a job either completes ([work]), raises
      ([crashed] builds its result and the worker's context is rebuilt
      before the next job), or is drained at interrupt ([dropped]);
    - {b deterministic emission order} — results reach [emit] in
      submission order regardless of the domain count or which domain
      ran which job, via a bounded reorder buffer;
    - {b backpressure} — {!submit} blocks while the queue is at its
      bound, so a fast producer cannot balloon memory;
    - {b graceful shutdown} — {!interrupt} stops dispatch, drains queued
      jobs through [dropped] (no silent truncation), and lets in-flight
      jobs finish.

    Every callback receives the job's submission sequence number
    ([seq]), which is also its position in the emitted result stream —
    the key an external observer correlates lifecycle events with.

    [emit] is called with the pool's lock held: it must not call back
    into the pool and should be cheap (write a line, stash in a list). *)

type probe = {
  p_enqueue : seq:int -> depth:int -> unit;
      (** after the job entered the queue; [depth] includes it *)
  p_dequeue : seq:int -> domain:int -> depth:int -> unit;
      (** a worker picked the job up; [depth] is what remains queued *)
  p_emit : seq:int -> unit;
      (** the job's result just left the reorder buffer via [emit] *)
}
(** Telemetry taps on the job lifecycle.  All three fire with the pool
    lock held: they must be cheap and must never call back into the
    pool (they may take their own locks — pool lock -> observer lock is
    then the only ordering that occurs).  When no probe is installed
    the cost is one branch per event. *)

type ('ctx, 'job, 'res) t

val create :
  ?domains:int ->
  ?queue_bound:int ->
  ?probe:probe ->
  init:(int -> 'ctx) ->
  work:('ctx -> seq:int -> 'job -> 'res) ->
  crashed:(seq:int -> 'job -> exn:string -> backtrace:string -> 'res) ->
  dropped:(seq:int -> 'job -> 'res) ->
  emit:('res -> unit) ->
  unit ->
  ('ctx, 'job, 'res) t
(** Spawns exactly [domains] worker domains (default 1) — the requested
    count is honoured even beyond the machine's core count, so
    interleaving tests mean what they say on small runners.
    [queue_bound] (default 256) is the backpressure limit on
    queued-not-yet-running jobs.
    @raise Invalid_argument if [domains] is not in [1..64] or
    [queue_bound] is not positive. *)

val submit : ('ctx, 'job, 'res) t -> 'job -> bool
(** Enqueues a job, blocking while the queue is full.  [false] means the
    pool was interrupted or closed and the job was {e not} accepted (the
    caller owns its fate). *)

val interrupt : ('ctx, 'job, 'res) t -> unit
(** Stops dispatch: queued jobs drain through [dropped] (in order, into
    the same reorder buffer), further {!submit}s return [false],
    in-flight jobs run to completion.  Idempotent; safe from a signal
    handler's notion of urgency, but must be called from ordinary
    context (it takes the pool lock). *)

val join : ('ctx, 'job, 'res) t -> unit
(** Closes the queue, waits for every worker domain, and returns once
    every submitted job's result has been emitted.  Idempotent. *)

val crashes : ('ctx, 'job, 'res) t -> int
(** Worker crashes survived so far (contexts rebuilt). *)
