(** Branch condition selection criteria.

    Each parcel's control fields include a "condition selection criteria"
    field that "determines how to combine and evaluate the condition codes
    and synchronization signals from all of the functional units" (paper
    §2.2).  The XIMD-1 research model defines:

    - two unconditional operations (always take target 1 / target 2);
    - branch on one condition code [CC_j == TRUE];
    - branch on one synchronisation signal [SS_j == DONE];
    - branch on ALL sync signals ([∏_j (SS_j == DONE)]);
    - branch on ANY sync signal ([∑_j (SS_j == DONE)]).

    The ALL/ANY forms carry an FU mask so that "synchronizations between
    only some of the program threads" (§3.3) are expressible; the paper's
    [∏dn] corresponds to the full mask. *)

type t =
  | Always1             (** unconditionally take branch target 1 *)
  | Always2             (** unconditionally take branch target 2 *)
  | Cc of int           (** [CC_j == TRUE] *)
  | Ss of int           (** [SS_j == DONE] *)
  | All_ss of int       (** [∏_{j in mask} (SS_j == DONE)]; bit j of the
                            mask selects FU j *)
  | Any_ss of int       (** [∑_{j in mask} (SS_j == DONE)] *)

val full_mask : int -> int
(** [full_mask n] selects FUs [0 .. n-1]. *)

val mask_of_list : int list -> int
val list_of_mask : int -> int list

val eval : t -> cc:(int -> bool) -> ss:(int -> Sync.t) -> bool
(** [eval c ~cc ~ss] decides the condition against the start-of-cycle
    condition codes and synchronisation signals.  [Always1] is [true]
    (target 1 taken); [Always2] is [false]. *)

val is_unconditional : t -> bool
(** True for [Always1]/[Always2]: the outcome does not depend on any
    run-time state. *)

val is_sync : t -> bool
(** True for [Ss]/[All_ss]/[Any_ss]: the condition reads synchronisation
    signals, so a branch spinning on it is a barrier wait (§3.3). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
