type t =
  | Always1
  | Always2
  | Cc of int
  | Ss of int
  | All_ss of int
  | Any_ss of int

let full_mask n =
  if n < 0 || n > 30 then invalid_arg "Cond.full_mask"
  else (1 lsl n) - 1

let mask_of_list fus = List.fold_left (fun m fu -> m lor (1 lsl fu)) 0 fus

let list_of_mask mask =
  let rec loop i acc =
    if 1 lsl i > mask then List.rev acc
    else loop (i + 1) (if mask land (1 lsl i) <> 0 then i :: acc else acc)
  in
  loop 0 []

let eval t ~cc ~ss =
  let done_ j = Sync.equal (ss j) Sync.Done in
  match t with
  | Always1 -> true
  | Always2 -> false
  | Cc j -> cc j
  | Ss j -> done_ j
  | All_ss mask -> List.for_all done_ (list_of_mask mask)
  | Any_ss mask -> List.exists done_ (list_of_mask mask)

let is_unconditional = function
  | Always1 | Always2 -> true
  | Cc _ | Ss _ | All_ss _ | Any_ss _ -> false

let is_sync = function
  | Ss _ | All_ss _ | Any_ss _ -> true
  | Always1 | Always2 | Cc _ -> false

let equal a b =
  match a, b with
  | Always1, Always1 | Always2, Always2 -> true
  | Cc i, Cc j | Ss i, Ss j | All_ss i, All_ss j | Any_ss i, Any_ss j ->
    Int.equal i j
  | (Always1 | Always2 | Cc _ | Ss _ | All_ss _ | Any_ss _), _ -> false

let pp fmt = function
  | Always1 -> Format.pp_print_string fmt "always"
  | Always2 -> Format.pp_print_string fmt "always2"
  | Cc j -> Format.fprintf fmt "cc%d" j
  | Ss j -> Format.fprintf fmt "ss%d" j
  | All_ss mask ->
    Format.fprintf fmt "all(%s)"
      (String.concat "," (List.map string_of_int (list_of_mask mask)))
  | Any_ss mask ->
    Format.fprintf fmt "any(%s)"
      (String.concat "," (List.map string_of_int (list_of_mask mask)))

let to_string t = Format.asprintf "%a" pp t
