open Ximd_core

type simulator = Ximd | Vliw

type variant = {
  sim : simulator;
  program : Program.t;
  config : Config.t;
  setup : State.t -> unit;
  check : State.t -> (unit, string) result;
}

type t = {
  name : string;
  description : string;
  ximd : variant;
  vliw : variant option;
}

let model = function Ximd -> Engine.Per_fu | Vliw -> Engine.Global

let session ?obs variant =
  Session.create ~config:variant.config ?obs ~model:(model variant.sim)
    variant.program

let run_session ?tracer ?watchdog session (variant : variant) =
  Session.run ?tracer ?watchdog ~setup:variant.setup session

(* One-shot run: a session used once behaves exactly like the historical
   create/setup/run sequence. *)
let run ?tracer ?watchdog ?obs variant =
  let s = session ?obs variant in
  let outcome = run_session ?tracer ?watchdog s variant in
  (outcome, Session.state s)

let run_checked ?tracer ?watchdog ?obs variant =
  let outcome, state = run ?tracer ?watchdog ?obs variant in
  match outcome with
  | Run.Fuel_exhausted { cycles } ->
    Error (Printf.sprintf "fuel exhausted after %d cycles" cycles)
  | Run.Deadlocked { cycles; _ } ->
    Error (Printf.sprintf "deadlocked after %d cycles" cycles)
  | Run.Budget_exceeded { cycles; budget } ->
    Error
      (Printf.sprintf "cycle budget of %d exceeded after %d cycles" budget
         cycles)
  | Run.Halted _ -> (
    match variant.check state with
    | Ok () -> Ok (outcome, state)
    | Error msg -> Error ("check failed: " ^ msg))

let speedup t =
  match t.vliw with
  | None -> Error "no VLIW variant"
  | Some vliw -> (
    match run_checked t.ximd with
    | Error msg -> Error ("ximd: " ^ msg)
    | Ok (x_outcome, _) -> (
      match run_checked vliw with
      | Error msg -> Error ("vliw: " ^ msg)
      | Ok (v_outcome, _) ->
        let xc = Run.cycles x_outcome and vc = Run.cycles v_outcome in
        Ok (float_of_int vc /. float_of_int xc, xc, vc)))
