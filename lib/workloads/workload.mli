(** Common harness for benchmark programs.

    A {!variant} is one runnable coding of a workload: a program, the
    simulator it targets, a configuration, memory/register/port
    initialisation, and a result check.  A {!t} pairs an XIMD coding
    with (usually) a VLIW coding of the same computation, for the paper's
    §4.1 comparison. *)

open Ximd_core

type simulator = Ximd | Vliw

type variant = {
  sim : simulator;
  program : Program.t;
  config : Config.t;
  setup : State.t -> unit;
  check : State.t -> (unit, string) result;
}

type t = {
  name : string;
  description : string;
  ximd : variant;
  vliw : variant option;
}

val model : simulator -> Engine.model
(** The sequencing model a variant's simulator selects: {!Engine.Per_fu}
    for [Ximd], {!Engine.Global} for [Vliw]. *)

val session : ?obs:Ximd_obs.Sink.t -> variant -> Session.t
(** A reusable {!Session} for the variant — state construction is paid
    once, each {!run_session} rewinds and re-runs.  When [obs] is given,
    every run feeds events and metrics into the sink (which is reset at
    the start of each run). *)

val run_session :
  ?tracer:Tracer.t -> ?watchdog:Watchdog.t -> Session.t -> variant -> Run.outcome
(** One run of [variant] on the session: rewind, apply the variant's
    [setup], run.  The session must have been built by {!session} on a
    variant with the same program and configuration. *)

val run :
  ?tracer:Tracer.t ->
  ?watchdog:Watchdog.t ->
  ?obs:Ximd_obs.Sink.t ->
  variant ->
  Run.outcome * State.t
(** Creates a state, applies [setup], and runs the variant on its
    simulator (a one-shot {!session}).  When [watchdog] is given, wedged
    runs classify as {!Run.Deadlocked} instead of burning their fuel.
    When [obs] is given, the run feeds events and metrics into the sink
    (see {!Ximd_obs.Sink}). *)

val run_checked :
  ?tracer:Tracer.t ->
  ?watchdog:Watchdog.t ->
  ?obs:Ximd_obs.Sink.t ->
  variant ->
  (Run.outcome * State.t, string) result
(** Like {!run}, but requires the run to halt within fuel — fuel
    exhaustion and deadlock both report [Error] — and the check to
    pass. *)

val speedup : t -> (float * int * int, string) result
(** [(vliw_cycles / ximd_cycles, ximd_cycles, vliw_cycles)] with both
    variants run and checked.  Errors if the workload has no VLIW
    variant or either run fails. *)
