(** The §4.1 comparison suite.

    The paper reports that programs "will be simulated on both the VLIW
    and XIMD architectures" and that "preliminary results show a
    significant performance increase on many programs".  This module
    fixes the concrete program list used for that experiment (E5 in
    DESIGN.md) and computes the comparison table. *)

type row = {
  name : string;
  description : string;
  ximd_cycles : int;
  vliw_cycles : int;
  speedup : float;
  ximd_max_streams : int;
  ximd_utilisation : float;
      (** raw {!Ximd_core.Stats.utilisation} — spin slots count against *)
  vliw_utilisation : float;
  ximd_effective_utilisation : float;
      (** {!Ximd_core.Stats.effective_utilisation} — spin slots excluded
          from the denominator, i.e. schedule density over the slots the
          compiler controlled *)
  vliw_effective_utilisation : float;
}

val all : unit -> Workload.t list
(** tproc, ll1, ll3, ll5, ll12, matmul, minmax, bitcount, classify,
    iosync — parity-shaped workloads first, control-parallel ones last. *)

val measure : Workload.t -> (row, string) result
(** Runs and checks both variants, collecting cycles and statistics. *)

val table : unit -> (row list, string) result
(** {!measure} over {!all}; fails on the first failing workload. *)
