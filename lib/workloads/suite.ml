type row = {
  name : string;
  description : string;
  ximd_cycles : int;
  vliw_cycles : int;
  speedup : float;
  ximd_max_streams : int;
  ximd_utilisation : float;
  vliw_utilisation : float;
  ximd_effective_utilisation : float;
  vliw_effective_utilisation : float;
}

let all () =
  [ Tproc.make ();
    Livermore.loop1 ();
    Livermore.loop3 ();
    Livermore.loop5 ();
    Livermore.loop12 ();
    Matmul.make ();
    Minmax.make ~data:[| 5; 3; 4; 7; 12; -3; 44; 0; 17; 2; 99; -8 |] ();
    Bitcount.make ();
    Classify.make ();
    Iosync.make () ]

let ( let* ) = Result.bind

let measure (workload : Workload.t) =
  match workload.vliw with
  | None -> Error (workload.name ^ ": no VLIW variant")
  | Some vliw_variant ->
    let* _, x_state =
      Result.map_error
        (fun e -> workload.name ^ " (ximd): " ^ e)
        (Workload.run_checked workload.ximd)
    in
    let* _, v_state =
      Result.map_error
        (fun e -> workload.name ^ " (vliw): " ^ e)
        (Workload.run_checked vliw_variant)
    in
    let xs = x_state.Ximd_core.State.stats in
    let vs = v_state.Ximd_core.State.stats in
    let x_fus = Ximd_core.State.n_fus x_state in
    let v_fus = Ximd_core.State.n_fus v_state in
    Ok
      { name = workload.name;
        description = workload.description;
        ximd_cycles = xs.cycles;
        vliw_cycles = vs.cycles;
        speedup = float_of_int vs.cycles /. float_of_int xs.cycles;
        ximd_max_streams = xs.max_streams;
        ximd_utilisation = Ximd_core.Stats.utilisation xs ~n_fus:x_fus;
        vliw_utilisation = Ximd_core.Stats.utilisation vs ~n_fus:v_fus;
        ximd_effective_utilisation =
          Ximd_core.Stats.effective_utilisation xs ~n_fus:x_fus;
        vliw_effective_utilisation =
          Ximd_core.Stats.effective_utilisation vs ~n_fus:v_fus }

let table () =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | workload :: rest ->
      let* row = measure workload in
      loop (row :: acc) rest
  in
  loop [] (all ())
