(** Structured failure postmortems.

    When a run ends badly — deadlocked, out of fuel, or with recorded
    hazards — the raw outcome value says very little about {e why}.  This
    module snapshots the machine into a structured report: one record per
    FU (PC, the parcel it is stuck on, the condition it is re-evaluating,
    its SS/CC state and SSET membership), plus the hazard log and any
    fired fault-injection events.

    The report renders two ways: {!pp} for humans and {!to_json} for
    scripts and CI — a hand-rolled, dependency-free JSON encoder. *)

type fu_report = {
  fu : int;
  halted : bool;
  pc : int;
  parcel : string option;
      (** rendered parcel at [pc]; [None] when the PC is outside the
          program (after {!Ximd_machine.Hazard.Fell_off_end}) *)
  waiting : Ximd_isa.Cond.t option;
      (** the branch condition a live FU re-evaluates each cycle *)
  ss : Ximd_isa.Sync.t;
  cc : bool option;
  sset : int list;  (** members of this FU's SSET, ascending *)
}

type t = {
  outcome : Ximd_core.Run.outcome;
  cycle : int;
  fus : fu_report list;
  hazards : Ximd_machine.Hazard.event list;
  faults : Ximd_machine.Fault.event list;
      (** injected faults that actually fired, in firing order *)
}

val collect : Ximd_core.State.t -> outcome:Ximd_core.Run.outcome -> t
(** Snapshots the final machine state.  Cheap (proportional to the FU
    count plus log sizes); intended for after the run, not per cycle. *)

val pp : Format.formatter -> t -> unit
(** Human-readable postmortem: outcome line, per-FU table, hazard and
    fault listings. *)

val to_json : t -> string
(** The same report as a single JSON object:
    [{"outcome": ..., "cycle": ..., "fus": [...], "hazards": [...],
      "faults": [...]}]. *)
