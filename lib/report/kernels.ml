open Ximd_compiler
module Op = Ximd_isa.Opcode

(* Straight-line kernels with varied dependence shapes.  Virtual
   registers are local to each function. *)

let block body = { Ir.label = "entry"; body; term = Ir.Return }

(* y := a*x + y over four lanes: wide and flat. *)
let saxpy_step =
  let a = 0 in
  let x i = 1 + i and y i = 5 + i and p i = 9 + i and r i = 13 + i in
  { Ir.name = "saxpy_step";
    params = a :: List.init 4 x @ List.init 4 y;
    results = List.init 4 r;
    blocks =
      [ block
          (List.init 4 (fun i -> Ir.Bin (Op.Fmult, Ir.V a, Ir.V (x i), p i))
           @ List.init 4 (fun i ->
               Ir.Bin (Op.Fadd, Ir.V (p i), Ir.V (y i), r i))) ] }

(* Degree-7 Horner evaluation: one long serial chain — narrow and tall. *)
let horner =
  let x = 0 and acc = 1 and t = 2 in
  let coeffs = [ 3l; -1l; 4l; 1l; -5l; 9l; 2l; 6l ] in
  let body =
    Ir.Un (Op.Mov, Ir.C (List.hd coeffs), acc)
    :: List.concat_map
         (fun c ->
           [ Ir.Bin (Op.Imult, Ir.V acc, Ir.V x, t);
             Ir.Bin (Op.Iadd, Ir.V t, Ir.C c, acc) ])
         (List.tl coeffs)
  in
  { Ir.name = "horner"; params = [ x ]; results = [ acc ];
    blocks = [ block body ] }

(* Four-tap FIR: loads, multiplies, adder tree. *)
let fir4 =
  let base = 0 and k = 1 in
  let x i = 2 + i and c i = 6 + i and p i = 10 + i in
  let s0 = 14 and s1 = 15 and out = 16 in
  let body =
    List.init 4 (fun i -> Ir.Load (Ir.V base, Ir.C (Int32.of_int i), x i))
    @ List.init 4 (fun i ->
        Ir.Bin (Op.Fmult, Ir.V (x i), Ir.V (c i), p i))
    @ [ Ir.Bin (Op.Fadd, Ir.V (p 0), Ir.V (p 1), s0);
        Ir.Bin (Op.Fadd, Ir.V (p 2), Ir.V (p 3), s1);
        Ir.Bin (Op.Fadd, Ir.V s0, Ir.V s1, out);
        Ir.Bin (Op.Iadd, Ir.V base, Ir.V k, base);
        Ir.Store (Ir.V out, Ir.V base) ]
  in
  { Ir.name = "fir4"; params = [ base; k; 6; 7; 8; 9 ]; results = [ out ];
    blocks = [ block body ] }

(* Address generator: independent short chains. *)
let addrgen =
  let b = 0 and i = 1 in
  let a0 = 2 and a1 = 3 and a2 = 4 and a3 = 5 and s = 6 in
  { Ir.name = "addrgen"; params = [ b; i ]; results = [ a0; a1; a2; a3 ];
    blocks =
      [ block
          [ Ir.Bin (Op.Shl, Ir.V i, Ir.C 2l, s);
            Ir.Bin (Op.Iadd, Ir.V b, Ir.V s, a0);
            Ir.Bin (Op.Iadd, Ir.V a0, Ir.C 1l, a1);
            Ir.Bin (Op.Iadd, Ir.V a0, Ir.C 2l, a2);
            Ir.Bin (Op.Iadd, Ir.V a0, Ir.C 3l, a3) ] ] }

(* Eight-way reduction: balanced binary tree. *)
let reduce8 =
  let v i = i in
  let s0 = 8 and s1 = 9 and s2 = 10 and s3 = 11 in
  let u0 = 12 and u1 = 13 and total = 14 in
  { Ir.name = "reduce8"; params = List.init 8 v; results = [ total ];
    blocks =
      [ block
          [ Ir.Bin (Op.Iadd, Ir.V 0, Ir.V 1, s0);
            Ir.Bin (Op.Iadd, Ir.V 2, Ir.V 3, s1);
            Ir.Bin (Op.Iadd, Ir.V 4, Ir.V 5, s2);
            Ir.Bin (Op.Iadd, Ir.V 6, Ir.V 7, s3);
            Ir.Bin (Op.Iadd, Ir.V s0, Ir.V s1, u0);
            Ir.Bin (Op.Iadd, Ir.V s2, Ir.V s3, u1);
            Ir.Bin (Op.Iadd, Ir.V u0, Ir.V u1, total) ] ] }

(* Dependent loads: pointer-chase flavoured chain. *)
let chain =
  let p = 0 and a = 1 and b = 2 and c = 3 and d = 4 in
  { Ir.name = "chain"; params = [ p ]; results = [ d ];
    blocks =
      [ block
          [ Ir.Load (Ir.V p, Ir.C 0l, a);
            Ir.Load (Ir.V a, Ir.C 0l, b);
            Ir.Load (Ir.V b, Ir.C 0l, c);
            Ir.Bin (Op.Iadd, Ir.V c, Ir.C 1l, d) ] ] }

let all = [ saxpy_step; horner; fir4; addrgen; reduce8; chain ]

(* Innermost-loop bodies for the modulo scheduler: one iteration each,
   loop-carried dependences expressed by virtual-register reuse (the
   induction variable and any accumulator) and by the scheduler's
   conservative memory model.  Shared by the A3 ablation and the
   `sched` bounds experiment. *)
let loop_bodies =
  [ ( "dot product (acc += M[a+i]*M[b+i])",
      [| Ir.Load (Ir.V 0, Ir.V 2, 10);
         Ir.Load (Ir.V 1, Ir.V 2, 11);
         Ir.Bin (Op.Imult, Ir.V 10, Ir.V 11, 12);
         Ir.Bin (Op.Iadd, Ir.V 3, Ir.V 12, 3);
         Ir.Bin (Op.Iadd, Ir.V 2, Ir.C 1l, 2) |] );
    ( "first difference (x[i] = y[i+1]-y[i])",
      [| Ir.Load (Ir.C 0x2001l, Ir.V 2, 10);
         Ir.Bin (Op.Isub, Ir.V 10, Ir.V 11, 12);
         Ir.Un (Op.Mov, Ir.V 10, 11);
         Ir.Store (Ir.V 12, Ir.V 13);
         Ir.Bin (Op.Iadd, Ir.V 13, Ir.C 1l, 13);
         Ir.Bin (Op.Iadd, Ir.V 2, Ir.C 1l, 2) |] );
    ( "recurrence (x = z*(y - x))",
      [| Ir.Bin (Op.Isub, Ir.V 1, Ir.V 0, 2);
         Ir.Bin (Op.Imult, Ir.V 3, Ir.V 2, 0) |] );
    ( "saxpy (y[i] += a*x[i])",
      [| Ir.Load (Ir.V 0, Ir.V 2, 10);
         Ir.Load (Ir.V 1, Ir.V 2, 11);
         Ir.Bin (Op.Fmult, Ir.V 4, Ir.V 10, 12);
         Ir.Bin (Op.Fadd, Ir.V 12, Ir.V 11, 13);
         Ir.Store (Ir.V 13, Ir.V 2);
         Ir.Bin (Op.Iadd, Ir.V 2, Ir.C 1l, 2) |] );
    ( "3-point stencil (z[i] = a[i]+a[i+1]+a[i+2])",
      [| Ir.Load (Ir.C 0x1000l, Ir.V 2, 10);
         Ir.Load (Ir.C 0x1001l, Ir.V 2, 11);
         Ir.Load (Ir.C 0x1002l, Ir.V 2, 12);
         Ir.Bin (Op.Iadd, Ir.V 10, Ir.V 11, 13);
         Ir.Bin (Op.Iadd, Ir.V 13, Ir.V 12, 14);
         Ir.Store (Ir.V 14, Ir.V 2);
         Ir.Bin (Op.Iadd, Ir.V 2, Ir.C 1l, 2) |] );
    ( "histogram (M[b[i]] += 1)",
      [| Ir.Load (Ir.V 0, Ir.V 1, 10);
         Ir.Bin (Op.Iadd, Ir.V 10, Ir.C 1l, 11);
         Ir.Store (Ir.V 11, Ir.V 1);
         Ir.Bin (Op.Iadd, Ir.V 1, Ir.C 1l, 1) |] ) ]

let menus ?(widths = [ 1; 2; 4; 8 ]) () =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | func :: rest -> (
      match Tile.generate ~widths func with
      | Error errors -> Error errors
      | Ok tiles -> loop ((func.Ir.name, Tile.pareto tiles) :: acc) rest)
  in
  loop [] all
