open Ximd_isa
module Core = Ximd_core
module M = Ximd_machine

type fu_report = {
  fu : int;
  halted : bool;
  pc : int;
  parcel : string option;
  waiting : Cond.t option;
  ss : Sync.t;
  cc : bool option;
  sset : int list;
}

type t = {
  outcome : Core.Run.outcome;
  cycle : int;
  fus : fu_report list;
  hazards : M.Hazard.event list;
  faults : M.Fault.event list;
}

let collect (state : Core.State.t) ~outcome =
  let program = state.program in
  let report fu =
    let halted = state.halted.(fu) in
    let pc = state.pcs.(fu) in
    let parcel =
      if pc >= 0 && pc < Core.Program.length program then
        Some (Parcel.to_string (Core.Program.row program pc).(fu))
      else None
    in
    let waiting =
      if halted then None
      else
        match
          if pc >= 0 && pc < Core.Program.length program then
            (Core.Program.row program pc).(fu).control
          else Control.Halt
        with
        | Control.Branch { cond; _ } -> Some cond
        | Control.Halt -> None
    in
    { fu;
      halted;
      pc;
      parcel;
      waiting;
      ss = state.sss.(fu);
      cc = state.ccs.(fu);
      sset = Core.Partition.sset_of state.partition fu }
  in
  { outcome;
    cycle = state.cycle;
    fus = List.init (Core.State.n_fus state) report;
    hazards = Core.State.hazards state;
    faults = (match state.faults with None -> [] | Some f -> M.Fault.fired f) }

(* ------------------------------------------------------------------ *)
(* Human-readable rendering                                            *)

let pp_cc fmt = function
  | None -> Format.pp_print_string fmt "X"
  | Some true -> Format.pp_print_string fmt "T"
  | Some false -> Format.pp_print_string fmt "F"

let pp_sset fmt sset =
  Format.fprintf fmt "{%s}"
    (String.concat "," (List.map string_of_int sset))

let pp_fu fmt r =
  Format.fprintf fmt "FU%-2d %-6s pc=%02x  ss=%-4s cc=%a  sset=%a" r.fu
    (if r.halted then "halted" else "live")
    r.pc
    (Sync.to_string r.ss)
    pp_cc r.cc pp_sset r.sset;
  (match r.waiting with
   | Some cond -> Format.fprintf fmt "  waits %a" Cond.pp cond
   | None -> ());
  match r.parcel with
  | Some p -> Format.fprintf fmt "  parcel: %s" p
  | None -> Format.fprintf fmt "  parcel: <outside program>"

let pp fmt t =
  let live = List.length (List.filter (fun r -> not r.halted) t.fus) in
  Format.fprintf fmt "@[<v>postmortem: %a@,cycle %d, %d/%d FUs live"
    Core.Run.pp t.outcome t.cycle live (List.length t.fus);
  List.iter (fun r -> Format.fprintf fmt "@,  %a" pp_fu r) t.fus;
  (match t.hazards with
   | [] -> ()
   | hs ->
     Format.fprintf fmt "@,hazards (%d):" (List.length hs);
     List.iter
       (fun e -> Format.fprintf fmt "@,  %a" M.Hazard.pp_event e)
       hs);
  (match t.faults with
   | [] -> ()
   | fs ->
     Format.fprintf fmt "@,injected faults fired (%d):" (List.length fs);
     List.iter
       (fun e -> Format.fprintf fmt "@,  %a" M.Fault.pp_event e)
       fs);
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* JSON rendering (hand-rolled, no dependencies)                       *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = "\"" ^ json_escape s ^ "\""
let jlist items = "[" ^ String.concat "," items ^ "]"
let jobj fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields)
  ^ "}"

let json_of_waiting (w : Core.Run.waiting) =
  jobj
    [ ("fu", string_of_int w.fu);
      ("pc", string_of_int w.pc);
      ("cond", jstr (Cond.to_string w.cond)) ]

let json_of_outcome = function
  | Core.Run.Halted { cycles } ->
    jobj [ ("kind", jstr "halted"); ("cycles", string_of_int cycles) ]
  | Core.Run.Fuel_exhausted { cycles } ->
    jobj [ ("kind", jstr "fuel_exhausted"); ("cycles", string_of_int cycles) ]
  | Core.Run.Deadlocked { cycles; spinning } ->
    jobj
      [ ("kind", jstr "deadlocked");
        ("cycles", string_of_int cycles);
        ("spinning", jlist (List.map json_of_waiting spinning)) ]
  | Core.Run.Budget_exceeded { cycles; budget } ->
    jobj
      [ ("kind", jstr "budget_exceeded");
        ("cycles", string_of_int cycles);
        ("budget", string_of_int budget) ]

let json_of_fu r =
  jobj
    [ ("fu", string_of_int r.fu);
      ("halted", string_of_bool r.halted);
      ("pc", string_of_int r.pc);
      ("parcel", (match r.parcel with Some p -> jstr p | None -> "null"));
      ( "waiting",
        match r.waiting with
        | Some c -> jstr (Cond.to_string c)
        | None -> "null" );
      ("ss", jstr (Sync.to_string r.ss));
      ("cc", (match r.cc with None -> "null" | Some b -> string_of_bool b));
      ("sset", jlist (List.map string_of_int r.sset)) ]

let json_of_hazard (e : M.Hazard.event) =
  jobj
    [ ("cycle", string_of_int e.cycle);
      ("hazard", jstr (M.Hazard.to_string e.hazard)) ]

let json_of_fault (e : M.Fault.event) =
  jobj
    [ ("at", string_of_int e.at);
      ("kind", jstr (M.Fault.kind_name e.kind));
      ("target", string_of_int e.target) ]

let to_json t =
  jobj
    [ ("outcome", json_of_outcome t.outcome);
      ("cycle", string_of_int t.cycle);
      ("fus", jlist (List.map json_of_fu t.fus));
      ("hazards", jlist (List.map json_of_hazard t.hazards));
      ("faults", jlist (List.map json_of_fault t.faults)) ]
