(** Regeneration of every figure and table in the paper's evaluation
    (the per-experiment index lives in DESIGN.md §4; paper-vs-measured
    records live in EXPERIMENTS.md).

    Each function prints a self-contained report to the formatter.
    [run_all] runs them in order. *)

val f7 : Format.formatter -> unit
(** Figure 7 + §2.2: the data-path instruction set table. *)

val e1 : Format.formatter -> unit
(** Example 1: the TPROC schedule — listing, cycle count, result check. *)

val e2 : Format.formatter -> unit
(** Example 2 + Figure 10: the MINMAX address trace, printed in the
    paper's format and diffed against the transcribed figure. *)

val e3 : Format.formatter -> unit
(** Example 3 + Figure 11: BITCOUNT1 partition evolution through fork,
    barrier and join. *)

val e4 : Format.formatter -> unit
(** Figure 12: IOSYNC — forwarded-value timeline and XIMD vs VLIW
    completion times. *)

val e5 : Format.formatter -> unit
(** §4.1: the XIMD vs VLIW comparison table over the workload suite. *)

val e6 : Format.formatter -> unit
(** §4.3: prototype performance projection — peak and achieved
    MIPS/MFLOPS at the 85 ns prototype cycle time. *)

val e7 : Format.formatter -> unit
(** Figure 13 + §4.2: tile menus for six threads, and the two packings
    (static code density and execution time) with their lower bounds. *)

val sched : Format.formatter -> unit
(** Scheduler-bounds accounting (ROADMAP item 4, first half): for every
    loop body in {!Kernels.loop_bodies} at widths 2/4/8, the heuristic
    II next to ResMII and RecMII, the gap, and the named binding
    constraint ({!Ximd_compiler.Schedobs.binding_of}). *)

val run_all : Format.formatter -> unit

val known : (string * (Format.formatter -> unit)) list
(** Experiment ids and their runners: f7, e1..e8, sched, all. *)

val e8 : Format.formatter -> unit
(** §3.3's generalised barriers: the PAIRSYNC workload, masked
    partner-only synchronisation vs all-thread synchronisation. *)
