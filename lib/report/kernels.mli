(** Six small IR kernels used as the Figure 13 thread set.

    The paper's figure shows six program threads, each compiled at
    several widths into differently shaped tiles.  These kernels are
    chosen to produce genuinely different tile shapes: wide/flat
    (parallel arithmetic), narrow/tall (serial chains), and mixes. *)

val all : Ximd_compiler.Ir.func list
(** Six validated single-entry functions, named t0..t5 style
    ("saxpy_step", "horner", "fir4", "addrgen", "reduce8", "chain"). *)

val loop_bodies : (string * Ximd_compiler.Ir.op array) list
(** Innermost-loop bodies (one iteration each) for the modulo
    scheduler: loop-carried dependences via vreg reuse and the
    conservative memory model.  Shared by the A3 ablation and the
    [sched] bounds experiment. *)

val menus :
  ?widths:int list ->
  unit ->
  ((string * Ximd_compiler.Tile.t list) list, string list) result
(** Tile menus ({!Ximd_compiler.Tile.generate} + pareto) for {!all}. *)
