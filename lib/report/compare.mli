(** Differential XIMD-vs-VLIW reports.

    Runs the same computation through a {!Ximd_core.Engine.Per_fu}
    session and a {!Ximd_core.Engine.Global} session — each with
    per-slot cycle accounting attached — and explains the cycle delta
    slot-by-slot: where the VLIW coding pads nops for worst-case
    schedules, where the XIMD coding trades them for SS spins and
    barrier waits (the paper's Figure 8/9 discussion, mechanically).

    The two sides are separate codings of the computation: a sync-based
    XIMD program is not control-consistent, so it cannot run under the
    global sequencer as-is. *)

type side = {
  label : string;
  model : Ximd_core.Engine.model;
  n_fus : int;
  outcome : Ximd_core.Run.outcome;
  cycles : int;
  stats : Ximd_core.Stats.t;        (** snapshot, safe to keep *)
  account : Ximd_obs.Account.t;
}

type t = {
  ximd : side;
  vliw : side;
}

type spec = {
  program : Ximd_core.Program.t;
  config : Ximd_core.Config.t;
  setup : Ximd_core.State.t -> unit;
}

val spec :
  ?config:Ximd_core.Config.t ->
  ?setup:(Ximd_core.State.t -> unit) ->
  Ximd_core.Program.t ->
  spec
(** [config] defaults to {!Ximd_core.Config.make} with the program's FU
    count; [setup] defaults to nothing. *)

val run : ximd:spec -> vliw:spec -> (t, string) result
(** Runs both sides (XIMD under [Per_fu], VLIW under [Global]).
    [Error] when a side's program is rejected (e.g. the VLIW coding is
    not control-consistent) or a run stops at a hazard; non-halting
    outcomes are reported in the sides, not as errors. *)

val of_workload : Ximd_workloads.Workload.t -> (t, string) result
(** Compare a workload's built-in XIMD and VLIW variants.  [Error] if
    the workload has no VLIW variant. *)

val delta_cycles : t -> int
(** [vliw.cycles - ximd.cycles]. *)

val speedup : t -> float
(** [vliw.cycles / ximd.cycles]; [0.] if the XIMD side ran 0 cycles. *)

val to_json : t -> string
(** Dependency-free, byte-stable JSON (schema [ximd-compare/1]): both
    sides (each embedding its [ximd-account/1] document) plus the
    cycle delta, speedup, and per-category slot deltas. *)

val pp : Format.formatter -> t -> unit
(** Human report: cycles/speedup header, per-side utilisation, the
    category-by-category slot table, and a one-line summary of where
    the VLIW's extra slots went. *)
