open Ximd_isa
module W = Ximd_workloads
module C = Ximd_compiler

let header fmt title =
  Format.fprintf fmt "@,=== %s ===@,@," title

(* ------------------------------------------------------------------ *)

let f7 fmt =
  header fmt "Figure 7 / section 2.2 — XIMD-1 data-path instruction set";
  Format.fprintf fmt "%-8s %-30s@," "Opcode" "Function";
  Format.fprintf fmt "-- integer/float arithmetic and logic --@,";
  List.iter
    (fun op ->
      Format.fprintf fmt "%-8s %s@," (Opcode.binop_to_string op)
        (Opcode.describe_binop op))
    Opcode.all_binops;
  Format.fprintf fmt "-- unary --@,";
  List.iter
    (fun op ->
      Format.fprintf fmt "%-8s %s@," (Opcode.unop_to_string op)
        (Opcode.describe_unop op))
    Opcode.all_unops;
  Format.fprintf fmt "-- compares (set the executing FU's CC) --@,";
  List.iter
    (fun op ->
      Format.fprintf fmt "%-8s %s@," (Opcode.cmpop_to_string op)
        (Opcode.describe_cmpop op))
    Opcode.all_cmpops;
  Format.fprintf fmt "-- memory and I/O --@,";
  Format.fprintf fmt "%-8s %s@," "load" "M(a + b) -> d";
  Format.fprintf fmt "%-8s %s@," "store" "a -> M(b)";
  Format.fprintf fmt "%-8s %s@," "in" "port -> d (0 when not ready)";
  Format.fprintf fmt "%-8s %s@," "out" "a -> port";
  Format.fprintf fmt "%-8s %s@," "nop" "no data operation"

(* ------------------------------------------------------------------ *)

let e1 fmt =
  header fmt "E1 / Example 1 — TPROC percolation-scheduled scalar code";
  let workload = W.Tproc.make () in
  (match W.Workload.run_checked workload.ximd with
   | Error msg -> Format.fprintf fmt "FAILED: %s@," msg
   | Ok (outcome, _) ->
     Format.fprintf fmt "schedule body: %d rows (paper: 5)@,"
       W.Tproc.body_cycles;
     Format.fprintf fmt "cycles (incl. halt row): %d@,"
       (Ximd_core.Run.cycles outcome);
     Format.fprintf fmt "result check: OK@,");
  (match W.Workload.speedup workload with
   | Ok (speedup, xc, vc) ->
     Format.fprintf fmt "XIMD %d vs VLIW %d cycles — speedup %.2f \
                         (paper: VLIW-style code runs identically)@,"
       xc vc speedup
   | Error msg -> Format.fprintf fmt "comparison failed: %s@," msg);
  Format.fprintf fmt "@,listing:@,%a@,"
    Ximd_core.Program.pp_listing workload.ximd.program

(* ------------------------------------------------------------------ *)

let e2 fmt =
  header fmt "E2 / Example 2 + Figure 10 — MINMAX address trace";
  let tracer = Ximd_core.Tracer.create () in
  let _, state = W.Workload.run ~tracer (W.Minmax.paper_variant ()) in
  Format.fprintf fmt "IZ = (5,3,4,7); four FUs; paper listing at the \
                      paper's addresses.@,@,";
  Ximd_core.Tracer.pp_figure10 ~comments:W.Minmax.figure10_comments fmt
    tracer;
  (* Diff against the transcription. *)
  let rows = Ximd_core.Tracer.rows tracer in
  let mismatches = ref 0 in
  List.iteri
    (fun cycle ((pcs, ccs, partition), (row : Ximd_core.Tracer.row)) ->
      let got_pcs =
        List.map
          (function Some pc -> pc | None -> -1)
          (Array.to_list row.pcs)
      in
      if
        got_pcs <> pcs
        || Ximd_core.Tracer.cc_string row.ccs <> ccs
        || Ximd_core.Partition.to_string row.partition <> partition
      then begin
        incr mismatches;
        Format.fprintf fmt "MISMATCH at cycle %d@," cycle
      end)
    (List.combine W.Minmax.figure10_expected rows);
  let result_check =
    match (W.Minmax.paper_variant ()).check state with
    | Ok () -> "min/max registers correct"
    | Error msg -> "RESULT WRONG: " ^ msg
  in
  Format.fprintf fmt "@,figure-10 agreement: %s; %s@,"
    (if !mismatches = 0 then "EXACT — all 14 cycles match"
     else Printf.sprintf "%d mismatching cycles" !mismatches)
    result_check

(* ------------------------------------------------------------------ *)

let e3 fmt =
  header fmt "E3 / Example 3 + Figure 11 — BITCOUNT1 barrier control flow";
  let tracer = Ximd_core.Tracer.create () in
  let workload = W.Bitcount.make () in
  match W.Workload.run_checked ~tracer workload.ximd with
  | Error msg -> Format.fprintf fmt "FAILED: %s@," msg
  | Ok (outcome, state) ->
    Format.fprintf fmt "n = 12 elements, 4 FUs; result check OK; %d cycles@,@,"
      (Ximd_core.Run.cycles outcome);
    (* Partition evolution, run-length encoded: the Figure 11 story. *)
    Format.fprintf fmt "partition evolution (cycle ranges):@,";
    let rows = Ximd_core.Tracer.rows tracer in
    let groups =
      List.fold_left
        (fun acc (row : Ximd_core.Tracer.row) ->
          let part = Ximd_core.Partition.to_string row.partition in
          match acc with
          | (start, _, prev) :: rest when prev = part ->
            (start, row.cycle, prev) :: rest
          | _ -> (row.cycle, row.cycle, part) :: acc)
        [] rows
    in
    List.iter
      (fun (start, stop, part) ->
        Format.fprintf fmt "  %4d..%-4d  %s@," start stop part)
      (List.rev groups);
    let stats = state.Ximd_core.State.stats in
    Format.fprintf fmt
      "@,max concurrent streams: %d (paper: forks into four threads)@,\
       busy-wait slots at the barrier: %d@,"
      stats.max_streams stats.spin_slots

(* ------------------------------------------------------------------ *)

let e4 fmt =
  header fmt "E4 / Figure 12 — IOSYNC non-blocking synchronisation";
  let workload = W.Iosync.make () in
  let describe name (variant : W.Workload.variant) =
    match W.Workload.run_checked variant with
    | Error msg ->
      Format.fprintf fmt "%s FAILED: %s@," name msg;
      None
    | Ok (outcome, state) ->
      let outs port =
        String.concat " "
          (List.map
             (fun (cycle, v) ->
               Printf.sprintf "%ld@%d" (Value.to_int32 v) cycle)
             (Ximd_machine.Ioport.output state.Ximd_core.State.io ~port))
      in
      Format.fprintf fmt
        "%s: %d cycles; port1 out (x,y,z): %s; port3 out (a,b,c): %s@," name
        (Ximd_core.Run.cycles outcome)
        (outs W.Iosync.p1_out_port)
        (outs W.Iosync.p2_out_port);
      Some (Ximd_core.Run.cycles outcome)
  in
  let xc = describe "XIMD (SS-bit sync, 2 streams)" workload.ximd in
  let vc =
    match workload.vliw with
    | Some v -> describe "VLIW (single stream)   " v
    | None -> None
  in
  match (xc, vc) with
  | Some x, Some v ->
    Format.fprintf fmt
      "speedup %.2f — the producing process \"can continue unhindered\"@,"
      (float_of_int v /. float_of_int x)
  | _ -> ()

(* ------------------------------------------------------------------ *)

let e5 fmt =
  header fmt "E5 / section 4.1 — XIMD vs VLIW comparison suite";
  match W.Suite.table () with
  | Error msg -> Format.fprintf fmt "FAILED: %s@," msg
  | Ok rows ->
    Format.fprintf fmt "%-10s %8s %8s %8s %8s %7s %7s %7s %7s@," "program"
      "ximd" "vliw" "speedup" "streams" "x-util" "v-util" "x-eff" "v-eff";
    List.iter
      (fun (r : W.Suite.row) ->
        Format.fprintf fmt
          "%-10s %8d %8d %7.2fx %8d %6.1f%% %6.1f%% %6.1f%% %6.1f%%@,"
          r.name r.ximd_cycles r.vliw_cycles r.speedup r.ximd_max_streams
          (100. *. r.ximd_utilisation)
          (100. *. r.vliw_utilisation)
          (100. *. r.ximd_effective_utilisation)
          (100. *. r.vliw_effective_utilisation))
      rows;
    Format.fprintf fmt
      "@,(util = data ops per FU-cycle slot; eff excludes busy-wait slots \
       from the denominator)@,";
    let wins =
      List.length (List.filter (fun (r : W.Suite.row) -> r.speedup > 1.05) rows)
    in
    Format.fprintf fmt
      "@,%d of %d programs show a significant performance increase \
       (paper: \"a significant performance increase on many programs\")@,"
      wins (List.length rows)

(* ------------------------------------------------------------------ *)

let prototype_cycle_ns = 85.0

let e6 fmt =
  header fmt "E6 / section 4.3 — prototype performance projection (85 ns)";
  let peak = Ximd_core.Stats.peak_mips ~n_fus:8 ~cycle_ns:prototype_cycle_ns in
  Format.fprintf fmt
    "peak: %.1f MIPS / %.1f MFLOPS (paper: \"in excess of 90 MIPS/90 \
     MFLOPS\")@,@,"
    peak peak;
  Format.fprintf fmt "%-10s %10s %10s %9s %9s@," "program" "MIPS" "MFLOPS"
    "util" "eff-util";
  List.iter
    (fun workload ->
      match W.Workload.run_checked workload.W.Workload.ximd with
      | Error msg ->
        Format.fprintf fmt "%-10s failed: %s@," workload.W.Workload.name msg
      | Ok (_, state) ->
        let stats = state.Ximd_core.State.stats in
        let n_fus = Ximd_core.State.n_fus state in
        Format.fprintf fmt "%-10s %10.1f %10.1f %8.1f%% %8.1f%%@,"
          workload.W.Workload.name
          (Ximd_core.Stats.mips stats ~cycle_ns:prototype_cycle_ns)
          (Ximd_core.Stats.mflops stats ~cycle_ns:prototype_cycle_ns)
          (100. *. Ximd_core.Stats.utilisation stats ~n_fus)
          (100. *. Ximd_core.Stats.effective_utilisation stats ~n_fus))
    (W.Suite.all ())

(* ------------------------------------------------------------------ *)

let e7 fmt =
  header fmt "E7 / Figure 13 + section 4.2 — tiles and packing";
  match Kernels.menus () with
  | Error errors -> Format.fprintf fmt "FAILED: %s@," (String.concat "; " errors)
  | Ok menus ->
    Format.fprintf fmt "tile menus (pareto-optimal width x length):@,";
    List.iter
      (fun (name, tiles) ->
        Format.fprintf fmt "  %-12s" name;
        List.iter
          (fun (t : C.Tile.t) ->
            Format.fprintf fmt " %dx%d" t.width t.length)
          tiles;
        Format.fprintf fmt "@,")
      menus;
    (match C.Packing.pack_density ~n_fus:8 menus with
     | Error msg -> Format.fprintf fmt "density packing failed: %s@," msg
     | Ok packing ->
       Format.fprintf fmt
         "@,packing optimised for static code density: %d rows (lower \
          bound %d)@,%s"
         packing.height packing.lower_bound
         (C.Packing.render packing));
    let deps =
      [ ("saxpy_step", "reduce8"); ("fir4", "reduce8"); ("addrgen", "fir4") ]
    in
    (match C.Packing.pack_time ~n_fus:8 ~deps menus with
     | Error msg -> Format.fprintf fmt "time packing failed: %s@," msg
     | Ok packing ->
       Format.fprintf fmt
         "@,packing optimised for execution time (deps: addrgen->fir4, \
          {saxpy,fir4}->reduce8): makespan %d (lower bound %d)@,%s"
         packing.height packing.lower_bound
         (C.Packing.render packing));
    (* Materialise the schedule into a runnable multi-stream program
       (Threader) and measure the real barrier-levelled makespan. *)
    match
      C.Threader.build ~threads:Kernels.all ~deps ~wires:[] ()
    with
    | Error errors ->
      Format.fprintf fmt "materialisation failed: %s@,"
        (String.concat "; " errors)
    | Ok threaded -> (
      match C.Threader.run threaded ~args:[] with
      | Error msg -> Format.fprintf fmt "run failed: %s@," msg
      | Ok (outcome, state) ->
        Format.fprintf fmt
          "@,materialised as a runnable XIMD program (levels %s): %d \
           cycles measured, max %d concurrent streams, %d barrier \
           spin-slots — vs the packer's idealised makespan (barriers \
           and dispatch rows are the overhead).@,"
          (String.concat " | "
             (List.map (String.concat ",") threaded.levels))
          (Ximd_core.Run.cycles outcome)
          state.Ximd_core.State.stats.max_streams
          state.Ximd_core.State.stats.spin_slots)

(* ------------------------------------------------------------------ *)

let e8 fmt =
  header fmt
    "E8 / section 3.3 — partial barriers among thread pairs (PAIRSYNC)";
  let lengths = [| 1; 1; 60; 60; 2; 2; 55; 55 |] in
  let phase2 = [| 120; 4; 4; 4 |] in
  let measure masked =
    match
      W.Workload.run_checked
        (W.Pairsync.make ~masked ~lengths ~phase2 ()).ximd
    with
    | Ok (outcome, state) ->
      Some (Ximd_core.Run.cycles outcome, state.Ximd_core.State.stats)
    | Error msg ->
      Format.fprintf fmt "FAILED: %s@," msg;
      None
  in
  match (measure true, measure false) with
  | Some (mc, ms), Some (fc, _) ->
    Format.fprintf fmt
      "eight width-1 threads in four pairs; pair 0 has quick inputs but \
       heavy private work.@,@,\
       partner-only synchronisation (masked ALL/SS): %5d cycles (max %d \
       streams)@,\
       all-threads synchronisation:                  %5d cycles@,@,\
       speedup %.2f — \"synchronizations between only some of the \
       program threads\" (paper 3.3) pay off exactly when thread \
       workloads are skewed.@,"
      mc ms.max_streams fc
      (float_of_int fc /. float_of_int mc)
  | _ -> ()

(* ------------------------------------------------------------------ *)

let sched fmt =
  header fmt
    "SCHED — heuristic II vs ResMII/RecMII bounds over the loop suite";
  Format.fprintf fmt "%-44s %5s %6s %6s %4s %4s  %s@," "loop body" "width"
    "ResMII" "RecMII" "II" "gap" "binding constraint";
  List.iter
    (fun (name, body) ->
      List.iter
        (fun width ->
          let b = C.Pipeliner.bounds ~width body in
          match C.Pipeliner.schedule ~width body with
          | Error msg ->
            Format.fprintf fmt "%-44s %5d  failed: %s@," name width msg
          | Ok s ->
            let lower = max b.C.Schedobs.res_mii b.C.Schedobs.rec_mii in
            Format.fprintf fmt "%-44s %5d %6d %6d %4d %4d  %s@," name width
              b.C.Schedobs.res_mii b.C.Schedobs.rec_mii s.ii (s.ii - lower)
              (C.Schedobs.binding_name
                 (C.Schedobs.binding_of b ~ii:s.ii)))
        [ 2; 4; 8 ];
      Format.fprintf fmt "@,")
    Kernels.loop_bodies;
  Format.fprintf fmt
    "gap = II - max(ResMII, RecMII); gap 0 means the iterative modulo \
     scheduler achieved the analytic lower bound, so every heuristic II \
     in this table is certified optimal for the given machine model.@,"

let run_all fmt =
  f7 fmt; e1 fmt; e2 fmt; e3 fmt; e4 fmt; e5 fmt; e6 fmt; e7 fmt; e8 fmt;
  sched fmt

let known =
  [ ("f7", f7); ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5);
    ("e6", e6); ("e7", e7); ("e8", e8); ("sched", sched); ("all", run_all) ]
