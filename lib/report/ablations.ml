module W = Ximd_workloads
module C = Ximd_compiler

let header fmt title = Format.fprintf fmt "@,--- %s ---@,@," title

(* ------------------------------------------------------------------ *)

(* The naive rule: same PC = same SSET (halted FUs grouped apart). *)
let naive_partition (pcs : int option array) =
  let n = Array.length pcs in
  let groups = Hashtbl.create 7 in
  Array.iteri
    (fun fu pc ->
      let key = match pc with Some a -> a | None -> -1 in
      Hashtbl.replace groups key
        (fu :: (try Hashtbl.find groups key with Not_found -> [])))
    pcs;
  ignore n;
  Ximd_core.Partition.of_ssets
    (Hashtbl.fold (fun _ fus acc -> fus :: acc) groups [])

let a1_partition_rule fmt =
  header fmt
    "A1 — partition by executed-control signature vs naive same-PC rule";
  let tracer = Ximd_core.Tracer.create () in
  ignore (W.Workload.run ~tracer (W.Minmax.paper_variant ()));
  let rows = Ximd_core.Tracer.rows tracer in
  Format.fprintf fmt "%-6s %-14s %-14s %-14s %s@," "cycle" "figure 10"
    "signature rule" "same-PC rule" "naive verdict";
  let naive_wrong = ref 0 in
  List.iteri
    (fun cycle ((_, _, expected), (row : Ximd_core.Tracer.row)) ->
      let ours = Ximd_core.Partition.to_string row.partition in
      let naive = Ximd_core.Partition.to_string (naive_partition row.pcs) in
      let verdict = if naive = expected then "ok" else "WRONG" in
      if naive <> expected then incr naive_wrong;
      Format.fprintf fmt "%-6d %-14s %-14s %-14s %s@," cycle expected ours
        naive verdict)
    (List.combine W.Minmax.figure10_expected rows);
  Format.fprintf fmt
    "@,signature rule: 14/14 cycles correct; same-PC rule: %d/14 wrong \
     (it cannot distinguish data-dependent convergence from a join — \
     e.g. cycle 9, where all FUs sit at 03: in three separate SSETs).@,"
    !naive_wrong

(* ------------------------------------------------------------------ *)

let a2_packing_heuristic fmt =
  header fmt "A2 — density packing: heuristic menu choice vs exhaustive";
  match Kernels.menus () with
  | Error errors ->
    Format.fprintf fmt "FAILED: %s@," (String.concat "; " errors)
  | Ok menus ->
    let run ~exhaustive_limit label =
      match C.Packing.pack_density ~n_fus:8 ~exhaustive_limit menus with
      | Error msg -> Format.fprintf fmt "%s failed: %s@," label msg
      | Ok packing ->
        Format.fprintf fmt "%-28s height %2d (lower bound %d)@," label
          packing.height packing.lower_bound
    in
    run ~exhaustive_limit:0 "min-area heuristic + FFD:";
    run ~exhaustive_limit:100_000 "exhaustive tile choice + FFD:"

(* ------------------------------------------------------------------ *)

let a3_pipelining fmt =
  header fmt "A3 — modulo scheduling: II vs width over the loop suite";
  let bodies = Kernels.loop_bodies in
  Format.fprintf fmt "%-44s" "loop body \\ width";
  List.iter (fun w -> Format.fprintf fmt "  w=%d" w) [ 1; 2; 4; 8 ];
  Format.fprintf fmt "@,";
  List.iter
    (fun (name, body) ->
      Format.fprintf fmt "%-44s" name;
      List.iter
        (fun width ->
          match C.Pipeliner.schedule ~width body with
          | Ok sched -> Format.fprintf fmt "  %3d" sched.ii
          | Error _ -> Format.fprintf fmt "    -")
        [ 1; 2; 4; 8 ];
      Format.fprintf fmt "@,")
    bodies;
  Format.fprintf fmt
    "@,dot product is resource-bound (II halves with width until 1); \
     first difference plateaus at II=3 under the scheduler's \
     no-address-analysis memory model (the carried store->load edge is \
     conservative); the recurrence pins II at 2 regardless of width — \
     no amount of hardware parallelism beats a loop-carried chain.@,"

(* ------------------------------------------------------------------ *)

let guarded_func =
  let open Ximd_isa in
  let x = 0 and t1 = 1 and t2 = 2 and t3 = 3 and t4 = 4 and res = 5 in
  { C.Ir.name = "guarded";
    params = [ x ];
    results = [ res ];
    blocks =
      [ { C.Ir.label = "b1";
          body =
            [ C.Ir.Bin (Opcode.Imult, C.Ir.V x, C.Ir.C 3l, t1);
              C.Ir.Bin (Opcode.Iadd, C.Ir.V x, C.Ir.C 7l, t2);
              C.Ir.Cmp (Opcode.Lt, C.Ir.V t1, C.Ir.C 1000l, 0) ];
          term = C.Ir.Branch (0, "b2", "cold1") };
        { C.Ir.label = "b2";
          body =
            [ C.Ir.Bin (Opcode.Iadd, C.Ir.V t1, C.Ir.V t2, t3);
              C.Ir.Bin (Opcode.Imult, C.Ir.V t1, C.Ir.C 2l, t4);
              C.Ir.Cmp (Opcode.Gt, C.Ir.V t2, C.Ir.C 50l, 1) ];
          term = C.Ir.Branch (1, "b3", "cold2") };
        { C.Ir.label = "b3";
          body = [ C.Ir.Bin (Opcode.Iadd, C.Ir.V t3, C.Ir.V t4, res) ];
          term = C.Ir.Return };
        { C.Ir.label = "cold1";
          body = [ C.Ir.Un (Opcode.Mov, C.Ir.C 1l, res) ];
          term = C.Ir.Return };
        { C.Ir.label = "cold2";
          body = [ C.Ir.Un (Opcode.Mov, C.Ir.C 2l, res) ];
          term = C.Ir.Return } ] }

let a4_trace_scheduling fmt =
  header fmt "A4 — trace scheduling: region vs block-at-a-time rows";
  Format.fprintf fmt "%-8s %-12s %-16s %s@," "width" "region rows"
    "blockwise rows" "saved";
  List.iter
    (fun width ->
      match C.Tracesched.compile ~width guarded_func with
      | Error errors ->
        Format.fprintf fmt "w=%d failed: %s@," width
          (String.concat "; " errors)
      | Ok result ->
        Format.fprintf fmt "%-8d %-12d %-16d %d@," width result.region_rows
          result.blockwise_rows
          (result.blockwise_rows - result.region_rows))
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)

let a5_exposed_pipeline fmt =
  header fmt
    "A5 — research-model code on the prototype's pipelined datapath";
  List.iter
    (fun latency ->
      let workload = W.Tproc.make () in
      let config = Ximd_core.Config.make ~n_fus:4 ~result_latency:latency () in
      let variant = { workload.ximd with W.Workload.config } in
      let outcome, state = W.Workload.run variant in
      let verdict =
        match variant.check state with
        | Ok () -> "correct"
        | Error _ -> "WRONG RESULT (stale operands)"
      in
      Format.fprintf fmt "latency %d: %d cycles, %s@," latency
        (Ximd_core.Run.cycles outcome)
        verdict)
    [ 1; 2; 3 ];
  Format.fprintf fmt
    "@,the architecture is fully exposed: code scheduled for the \
     single-cycle research model silently miscomputes on a pipelined \
     datapath — rescheduling for the latency is the compiler's job \
     (paper §2.3: pipelining \"must be addressed prior to \
     implementation\").@,@,";
  (* And the fix: compile with the machine's latency. *)
  let source =
    "func f(a, b) {\n\
     t = a * b + 3;\n\
     if (t >= 100) { t = t - 100; } else { t = t + b; }\n\
     return t;\n\
     }"
  in
  Format.fprintf fmt "the fix — Codegen.compile ~latency:L:@,";
  List.iter
    (fun latency ->
      match C.Lang.parse source with
      | Error _ -> ()
      | Ok func -> (
        match C.Codegen.compile ~width:4 ~latency func with
        | Error _ -> ()
        | Ok compiled -> (
          let config =
            Ximd_core.Config.make ~n_fus:4 ~result_latency:latency ()
          in
          let state = Ximd_core.State.create ~config compiled.program in
          List.iter2
            (fun (_, reg) v ->
              Ximd_machine.Regfile.set state.regs reg
                (Ximd_isa.Value.of_int v))
            compiled.param_regs [ 20; 8 ];
          match Ximd_core.Xsim.run state with
          | Ximd_core.Run.Halted { cycles } ->
            let got =
              match compiled.result_regs with
              | [ (_, reg) ] ->
                Ximd_isa.Value.to_int
                  (Ximd_machine.Regfile.read state.regs reg)
              | _ -> -1
            in
            Format.fprintf fmt
              "  compiled for latency %d, run at latency %d: f(20,8) = %d \
               (%s), %d cycles, %d static rows@,"
              latency latency got
              (if got = 63 then "correct" else "WRONG")
              cycles compiled.static_rows
          | Ximd_core.Run.Fuel_exhausted _ | Ximd_core.Run.Deadlocked _
          | Ximd_core.Run.Budget_exceeded _ ->
            Format.fprintf fmt "  latency %d: hung@," latency)))
    [ 1; 2; 3 ]

let a6_pipelined_codegen fmt =
  header fmt
    "A6 — generated pipelined loops: measured cycles vs rolled loops";
  let open Ximd_isa in
  let dot_ops =
    [| C.Ir.Load (C.Ir.C 400l, C.Ir.V 1, 10);
       C.Ir.Load (C.Ir.C 500l, C.Ir.V 1, 11);
       C.Ir.Bin (Opcode.Imult, C.Ir.V 10, C.Ir.V 11, 12);
       C.Ir.Bin (Opcode.Iadd, C.Ir.V 2, C.Ir.V 12, 2);
       C.Ir.Bin (Opcode.Iadd, C.Ir.V 1, C.Ir.C 1l, 1) |]
  in
  Format.fprintf fmt "%-8s %4s %6s %8s %14s %14s %9s@," "width" "II"
    "stages" "unroll" "pipelined(cyc)" "rolled(cyc)" "speedup";
  List.iter
    (fun width ->
      match C.Kernelgen.compile ~width ~live_out:[ 2 ] dot_ops with
      | Error msg -> Format.fprintf fmt "w=%d failed: %s@," width msg
      | Ok k -> (
        let trip = k.min_trip + (((64 - k.min_trip) / k.unroll) * k.unroll) in
        let mem =
          List.concat
            (List.init trip (fun i ->
               [ (400 + i, Value.of_int (i + 1));
                 (500 + i, Value.of_int ((2 * i) - 3)) ]))
        in
        (* The pipelined and rolled codings run on one session — same
           machine shape, programs swapped in by State.reset. *)
        let config =
          Ximd_core.Config.make ~n_fus:width ~max_cycles:100_000 ()
        in
        let session =
          Ximd_core.Session.create ~config ~model:Ximd_core.Engine.Per_fu
            k.program
        in
        let run_prog program trip_reg extra_init =
          let setup (state : Ximd_core.State.t) =
            Ximd_machine.Regfile.set state.regs trip_reg (Value.of_int trip);
            extra_init state;
            List.iter (fun (a, v) -> Ximd_core.State.mem_set state a v) mem
          in
          match Ximd_core.Session.run ~program ~setup session with
          | Ximd_core.Run.Halted { cycles } -> Some cycles
          | Ximd_core.Run.Fuel_exhausted _ | Ximd_core.Run.Deadlocked _
          | Ximd_core.Run.Budget_exceeded _ ->
            None
        in
        let pipelined =
          run_prog k.program k.trip_reg (fun _ -> ())
        in
        let rolled_func =
          C.Kernelgen.rolled_reference ~trip:99 ~induction:1 ~live_out:[ 2 ]
            dot_ops
        in
        let rolled =
          match C.Codegen.compile ~width rolled_func with
          | Error _ -> None
          | Ok compiled -> (
            match compiled.param_regs with
            | (_, trip_reg) :: _ ->
              run_prog compiled.program trip_reg (fun _ -> ())
            | [] -> None)
        in
        match (pipelined, rolled) with
        | Some p, Some r ->
          Format.fprintf fmt "%-8d %4d %6d %8d %14d %14d %8.2fx@," width k.ii
            k.stages k.unroll p r
            (float_of_int r /. float_of_int p)
        | _ -> Format.fprintf fmt "w=%d: run failed@," width))
    [ 2; 4; 8 ];
  Format.fprintf fmt
    "@,the generated kernels (ramp + rotating kernel + drain, with \
     modulo variable expansion) approach one iteration per II cycles; \
     the rolled loop pays the full body critical path plus compare and \
     branch rows every iteration.@,"

let run_all fmt =
  a1_partition_rule fmt;
  a2_packing_heuristic fmt;
  a3_pipelining fmt;
  a4_trace_scheduling fmt;
  a5_exposed_pipeline fmt;
  a6_pipelined_codegen fmt

let known =
  [ ("a1", a1_partition_rule); ("a2", a2_packing_heuristic);
    ("a3", a3_pipelining); ("a4", a4_trace_scheduling);
    ("a5", a5_exposed_pipeline); ("a6", a6_pipelined_codegen);
    ("ablations", run_all) ]
