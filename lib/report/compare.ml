module Core = Ximd_core
module Obs = Ximd_obs

(* Differential XIMD-vs-VLIW report: run the same computation through a
   Per_fu and a Global session with per-slot accounting on, and explain
   the cycle delta category by category — the paper's Figure 8/9
   discussion made mechanical.  The two sides are separate program
   codings (a sync-based XIMD program is not control-consistent, so it
   cannot run under the global sequencer as-is; the VLIW coding encodes
   the same computation with worst-case padding). *)

type side = {
  label : string;
  model : Core.Engine.model;
  n_fus : int;
  outcome : Core.Run.outcome;
  cycles : int;
  stats : Core.Stats.t;        (* snapshot *)
  account : Obs.Account.t;
}

type t = {
  ximd : side;
  vliw : side;
}

type spec = {
  program : Core.Program.t;
  config : Core.Config.t;
  setup : Core.State.t -> unit;
}

let spec ?config ?(setup = fun _ -> ()) program =
  let config =
    match config with
    | Some c -> c
    | None -> Core.Config.make ~n_fus:(Core.Program.n_fus program) ()
  in
  { program; config; setup }

let run_side ~label ~model { program; config; setup } =
  let obs =
    (* lean sink: accounting only — no event ring, no profile *)
    Obs.Sink.create ~trace:false ~profile:false
      ~n_fus:config.Core.Config.n_fus
      ~code_len:(Core.Program.length program)
      ()
  in
  match Core.Session.create ~config ~obs ~model program with
  | exception Invalid_argument msg -> Error (label ^ ": " ^ msg)
  | session ->
    let outcome =
      match Core.Session.run ~setup session with
      | outcome -> Ok outcome
      | exception Ximd_machine.Hazard.Error event ->
        Error
          (label ^ ": hazard: "
          ^ Format.asprintf "%a" Ximd_machine.Hazard.pp_event event)
    in
    Result.map
      (fun outcome ->
        let state = Core.Session.state session in
        let account =
          match Obs.Sink.account obs with
          | Some a -> a
          | None -> assert false (* accounting is on by default *)
        in
        { label;
          model;
          n_fus = config.Core.Config.n_fus;
          outcome;
          cycles = state.Core.State.cycle;
          stats = Core.Stats.copy state.Core.State.stats;
          account })
      outcome

let run ~ximd ~vliw =
  match run_side ~label:"ximd" ~model:Core.Engine.Per_fu ximd with
  | Error _ as e -> e
  | Ok x -> (
    match run_side ~label:"vliw" ~model:Core.Engine.Global vliw with
    | Error _ as e -> e
    | Ok v -> Ok { ximd = x; vliw = v })

let of_workload (w : Ximd_workloads.Workload.t) =
  match w.vliw with
  | None -> Error (w.name ^ ": no VLIW variant")
  | Some v ->
    run
      ~ximd:
        { program = w.ximd.program;
          config = w.ximd.config;
          setup = w.ximd.setup }
      ~vliw:{ program = v.program; config = v.config; setup = v.setup }

(* ------------------------------------------------------------------ *)

let delta_cycles t = t.vliw.cycles - t.ximd.cycles

let speedup t =
  if t.ximd.cycles = 0 then 0.
  else float_of_int t.vliw.cycles /. float_of_int t.ximd.cycles

let outcome_name = function
  | Core.Run.Halted _ -> "halted"
  | Core.Run.Fuel_exhausted _ -> "fuel_exhausted"
  | Core.Run.Deadlocked _ -> "deadlocked"
  | Core.Run.Budget_exceeded _ -> "budget_exceeded"

let side_json s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"model\":\"%s\",\"outcome\":\"%s\",\"cycles\":%d,\"n_fus\":%d,\
        \"data_ops\":%d,\"utilisation\":%.4f,\"effective_utilisation\":\
        %.4f,\"account\":"
       (match s.model with
        | Core.Engine.Per_fu -> "per_fu"
        | Core.Engine.Global -> "global"
        | Core.Engine.Banked -> "banked")
       (outcome_name s.outcome) s.cycles s.n_fus s.stats.Core.Stats.data_ops
       (Core.Stats.utilisation s.stats ~n_fus:s.n_fus)
       (Core.Stats.effective_utilisation s.stats ~n_fus:s.n_fus));
  Buffer.add_string buf (Obs.Account.to_json s.account ~cycles:s.cycles);
  Buffer.add_char buf '}';
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"schema\":\"ximd-compare/1\",";
  Buffer.add_string buf "\"ximd\":";
  Buffer.add_string buf (side_json t.ximd);
  Buffer.add_string buf ",\"vliw\":";
  Buffer.add_string buf (side_json t.vliw);
  Buffer.add_string buf
    (Printf.sprintf ",\"delta\":{\"cycles\":%d,\"speedup\":%.4f,\"slots\":{"
       (delta_cycles t) (speedup t));
  List.iteri
    (fun i cls ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%d" (Obs.Account.name cls)
           (Obs.Account.total t.vliw.account cls
           - Obs.Account.total t.ximd.account cls)))
    Obs.Account.all;
  Buffer.add_string buf "}}}";
  Buffer.contents buf

let pp fmt t =
  let x = t.ximd and v = t.vliw in
  Format.pp_open_vbox fmt 0;
  Format.fprintf fmt
    "XIMD vs VLIW: %d vs %d cycles (speedup %.2fx, delta %+d)@," x.cycles
    v.cycles (speedup t) (delta_cycles t);
  Format.fprintf fmt "  ximd: %a  utilisation %.1f%% (effective %.1f%%)@,"
    Core.Run.pp x.outcome
    (100. *. Core.Stats.utilisation x.stats ~n_fus:x.n_fus)
    (100. *. Core.Stats.effective_utilisation x.stats ~n_fus:x.n_fus);
  Format.fprintf fmt "  vliw: %a  utilisation %.1f%% (effective %.1f%%)@,"
    Core.Run.pp v.outcome
    (100. *. Core.Stats.utilisation v.stats ~n_fus:v.n_fus)
    (100. *. Core.Stats.effective_utilisation v.stats ~n_fus:v.n_fus);
  Format.fprintf fmt "  slot accounting (XIMD vs VLIW, per category):@,";
  Format.fprintf fmt "  %-12s  %12s  %12s  %8s@," "category" "ximd" "vliw"
    "delta";
  List.iter
    (fun cls ->
      let xs = Obs.Account.total x.account cls
      and vs = Obs.Account.total v.account cls in
      if xs > 0 || vs > 0 then
        Format.fprintf fmt "  %-12s  %12d  %12d  %+8d@,"
          (Obs.Account.label cls) xs vs (vs - xs))
    Obs.Account.all;
  (* the mechanical Figure 8/9 sentence: where the VLIW's extra slots
     went *)
  let extra =
    List.filter_map
      (fun cls ->
        let d =
          Obs.Account.total v.account cls - Obs.Account.total x.account cls
        in
        if d > 0 && cls <> Obs.Account.Halted then
          Some (Printf.sprintf "%+d %s" d (Obs.Account.label cls))
        else None)
      Obs.Account.all
  in
  (match extra with
   | [] -> ()
   | parts ->
     Format.fprintf fmt "  the VLIW's extra slots: %s@,"
       (String.concat ", " parts));
  Format.pp_close_box fmt ()
