open Ximd_isa

(* What a conforming simulator must agree on.  Everything architecturally
   observable at the end of a run, plus a per-cycle control trace so a
   divergence can be localised to the first cycle where two simulators
   disagree.  The record is produced both by the reference interpreter
   ({!Interp.run}) and by the optimised engine (via {!Ximd_gen.Diff}),
   and compared field by field. *)

type row = {
  cycle : int;
  pcs : int option array;  (* per FU; [None] = halted at top of cycle *)
  ccs : bool option array;
  sss : Sync.t array;
}

type t = {
  outcome : Ximd_core.Run.outcome;
  registers : Value.t array;  (* all 256, final *)
  memory : (int * Value.t) list;  (* non-zero words, ascending address *)
  io_out : (int * (int * Value.t) list) list;
      (* port -> (cycle, value) write log, ports with output only *)
  hazards : (int * string) list;  (* (cycle, rendered hazard), in order *)
  trace : row list;  (* one row per executed cycle, oldest first *)
}

let outcome_string (o : Ximd_core.Run.outcome) =
  match o with
  | Ximd_core.Run.Halted { cycles } -> Printf.sprintf "halted/%d" cycles
  | Ximd_core.Run.Fuel_exhausted { cycles } ->
    Printf.sprintf "fuel-exhausted/%d" cycles
  | Ximd_core.Run.Deadlocked { cycles; _ } ->
    Printf.sprintf "deadlocked/%d" cycles
  (* the reference interpreter runs without a budget, but the type is
     total so observations of budgeted engine runs still render *)
  | Ximd_core.Run.Budget_exceeded { cycles; _ } ->
    Printf.sprintf "budget-exceeded/%d" cycles

let row_equal a b =
  a.cycle = b.cycle
  && Array.for_all2 (Option.equal Int.equal) a.pcs b.pcs
  && Array.for_all2 (Option.equal Bool.equal) a.ccs b.ccs
  && Array.for_all2 Sync.equal a.sss b.sss

let equal a b =
  outcome_string a.outcome = outcome_string b.outcome
  && Array.for_all2 Value.equal a.registers b.registers
  && List.equal
       (fun (x, v) (y, w) -> x = y && Value.equal v w)
       a.memory b.memory
  && List.equal
       (fun (p, l) (q, m) ->
         p = q
         && List.equal
              (fun (c, v) (d, w) -> c = d && Value.equal v w)
              l m)
       a.io_out b.io_out
  && List.equal (fun (c, h) (d, i) -> c = d && h = i) a.hazards b.hazards
  && List.equal row_equal a.trace b.trace

let pp_row fmt r =
  Format.fprintf fmt "cycle %-3d pc=[%s] cc=[%s] ss=[%s]" r.cycle
    (String.concat " "
       (Array.to_list
          (Array.map
             (function Some pc -> Printf.sprintf "%02x" pc | None -> "--")
             r.pcs)))
    (String.concat ""
       (Array.to_list
          (Array.map
             (function Some true -> "T" | Some false -> "F" | None -> "X")
             r.ccs)))
    (String.concat ""
       (Array.to_list
          (Array.map
             (fun s -> if Sync.equal s Sync.Done then "D" else "B")
             r.sss)))

(* Byte-stable plain-text summary: the sidecar format of the conformance
   suites.  Deliberately omits the trace (which scales with cycle count)
   — the trace is compared in lockstep, the sidecar pins the final
   state. *)
let summary t =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "outcome: %s\n" (outcome_string t.outcome);
  Array.iteri
    (fun i v ->
      if not (Value.equal v Value.zero) then
        add "reg r%d = %ld\n" i (Value.to_int32 v))
    t.registers;
  List.iter
    (fun (addr, v) -> add "mem[%d] = %ld\n" addr (Value.to_int32 v))
    t.memory;
  List.iter
    (fun (port, writes) ->
      List.iter
        (fun (cycle, v) ->
          add "out[%d] @%d = %ld\n" port cycle (Value.to_int32 v))
        writes)
    t.io_out;
  List.iter (fun (cycle, h) -> add "hazard @%d: %s\n" cycle h) t.hazards;
  Buffer.contents buf
