(** The architecturally observable result of a run: what the reference
    interpreter and the optimised engine must agree on, byte for byte. *)

open Ximd_isa

type row = {
  cycle : int;
  pcs : int option array;  (** per FU; [None] = halted at top of cycle *)
  ccs : bool option array;
  sss : Sync.t array;
}

type t = {
  outcome : Ximd_core.Run.outcome;
  registers : Value.t array;  (** all 256, final *)
  memory : (int * Value.t) list;  (** non-zero words, ascending address *)
  io_out : (int * (int * Value.t) list) list;
      (** port -> (cycle, value) write log, ports with output only *)
  hazards : (int * string) list;  (** (cycle, rendered hazard), in order *)
  trace : row list;  (** one row per executed cycle, oldest first *)
}

val outcome_string : Ximd_core.Run.outcome -> string
val row_equal : row -> row -> bool
val equal : t -> t -> bool
val pp_row : Format.formatter -> row -> unit

val summary : t -> string
(** Byte-stable plain-text summary (without the trace): the sidecar
    format of the [suites/] conformance corpus. *)
