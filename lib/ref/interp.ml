open Ximd_isa
module Hazard = Ximd_machine.Hazard
module Program = Ximd_core.Program
module Config = Ximd_core.Config
module Run = Ximd_core.Run

(* The reference interpreter.

   A deliberately slow, straight-line implementation of the XIMD cycle
   semantics (paper §2.2), written to be read against PAPER.md and
   DESIGN.md §5 rather than to be fast: plain lists, fresh allocation
   every cycle, no arenas, no dirty stacks, no hooks, no observability.
   Its single job is to be obviously correct, so that the optimised
   {!Ximd_core.Engine} can be judged against it in lockstep
   ({!Ximd_gen.Diff}) on any program the engine accepts.

   The machine model per cycle:

   1. Each live stream's sequencer selects one instruction row (the
      stream leader's PC).  A PC outside the program is a
      [Fell_off_end] hazard and the stream fetches halt parcels.
   2. Each sequencer evaluates its branch condition against
      start-of-cycle condition codes and sync signals.
   3. Every live FU executes its data parcel, reading start-of-cycle
      registers and memory.  Results are staged, due to commit at the
      end of cycle [issue + result_latency - 1].
   4. End of cycle: due results commit.  Several writes to one
      register or memory word are a multiple-write hazard; the
      highest-numbered FU wins, the latest write on ties.  Compare
      results land in the writing FU's condition code.
   5. The sequencer commits control: a halting stream's FUs stop (their
      sync signals read DONE from then on — except under the global
      sequencer, where sync signals have no architectural role), a
      branching stream's FUs drive the sync values of their parcels and
      all receive the selected next PC.

   After the last FU halts, remaining pipeline results drain in issue
   order, one cycle per write-back stage.

   Hazards are always recorded (the {!Ximd_machine.Hazard.Record}
   discipline); the interpreter never raises on a hazard.  Faults,
   scripted I/O input, watchdogs and observability are deliberately out
   of scope: the conformance surface is a plain program run on a plain
   machine. *)

type model = Per_fu | Global | Banked

type pending_write = {
  due : int;  (* the cycle at whose end this result commits *)
  target : [ `Reg of int | `Mem of int ];
  fu : int;
  value : Value.t;
}

type machine = {
  config : Config.t;
  program : Program.t;
  n : int;  (* number of FUs *)
  registers : Value.t array;
  mutable memory : (int * Value.t) list;  (* sparse; absent = zero *)
  port_writes : (int * Value.t) list array;  (* chronological per port *)
  pcs : int array;
  ccs : bool option array;
  sss : Sync.t array;
  halted : bool array;
  mutable cycle : int;
  mutable pending : pending_write list;  (* issue order *)
  mutable hazards : (int * Hazard.t) list;  (* chronological *)
  mutable trace : Observation.row list;  (* chronological *)
}

let hazard m h = m.hazards <- m.hazards @ [ (m.cycle, h) ]

(* ------------------------------------------------------------------ *)
(* Streams: how FUs group under each sequencing model (paper Figure 3) *)

let n_streams model ~n =
  match model with Per_fu -> n | Global -> 1 | Banked -> 2

let stream_bounds model ~n k =
  match model with
  | Per_fu -> (k, k)
  | Global -> (0, n - 1)
  | Banked -> if k = 0 then (0, (n / 2) - 1) else (n / 2, n - 1)

(* The FU a stream's hazards are attributed to: its sequencer.  The
   global sequencer is not an FU of its own, so blame the lowest FU
   still issuing. *)
let seq_fu model m ~leader ~last =
  match model with
  | Per_fu | Banked -> leader
  | Global ->
    let rec first fu =
      if fu >= last || not m.halted.(fu) then fu else first (fu + 1)
    in
    first leader

(* ------------------------------------------------------------------ *)
(* Registers, memory, I/O ports                                        *)

let read_reg m r = m.registers.(Reg.index r)

let read_operand m = function
  | Operand.Reg r -> read_reg m r
  | Operand.Imm v -> v

(* An address is accessible to [fu] if it is in range and, under the
   distributed organisation, falls in that FU's bank. *)
let accessible m ~fu addr =
  addr >= 0
  && addr < m.config.mem_words
  &&
  match m.config.mem_organisation with
  | Ximd_machine.Memory.Shared -> true
  | Ximd_machine.Memory.Distributed { n_fus } ->
    let bank = m.config.mem_words / n_fus in
    addr / bank = fu

let read_mem m ~fu addr =
  if not (accessible m ~fu addr) then begin
    hazard m (Hazard.Mem_out_of_bounds { addr; fu });
    Value.zero
  end
  else
    match List.assoc_opt addr m.memory with
    | Some value -> value
    | None -> Value.zero

let write_mem m addr value =
  m.memory <- (addr, value) :: List.remove_assoc addr m.memory

let read_port m ~fu port =
  (* No scripted input in the conformance surface: an in-range read
     consumes nothing and yields zero, exactly like an unscripted
     {!Ximd_machine.Ioport}. *)
  if port < 0 || port >= m.config.n_ports then
    hazard m (Hazard.Port_out_of_range { port; fu });
  Value.zero

let write_port m ~fu port value =
  if port < 0 || port >= m.config.n_ports then
    hazard m (Hazard.Port_out_of_range { port; fu })
  else m.port_writes.(port) <- m.port_writes.(port) @ [ (m.cycle, value) ]

(* ------------------------------------------------------------------ *)
(* The ALU, restated from first principles (independent of
   {!Ximd_machine.Alu} so a datapath bug there cannot hide here).  All
   integer arithmetic is 32-bit two's complement; shift amounts use the
   low five bits; floats live in registers as their IEEE-754 bits. *)

let i32 = Value.to_int32
let of_i32 = Value.of_int32
let fl = Value.to_float
let of_fl = Value.of_float

let alu_bin m ~fu (op : Opcode.binop) a b =
  let shift f = of_i32 (f (i32 a) (Int32.to_int (i32 b) land 31)) in
  let div_checked f =
    if Int32.equal (i32 b) 0l then begin
      hazard m (Hazard.Div_by_zero { fu });
      Value.zero
    end
    else of_i32 (f (i32 a) (i32 b))
  in
  match op with
  | Opcode.Iadd -> of_i32 (Int32.add (i32 a) (i32 b))
  | Opcode.Isub -> of_i32 (Int32.sub (i32 a) (i32 b))
  | Opcode.Imult -> of_i32 (Int32.mul (i32 a) (i32 b))
  | Opcode.Idiv -> div_checked Int32.div
  | Opcode.Imod -> div_checked Int32.rem
  | Opcode.And -> of_i32 (Int32.logand (i32 a) (i32 b))
  | Opcode.Or -> of_i32 (Int32.logor (i32 a) (i32 b))
  | Opcode.Xor -> of_i32 (Int32.logxor (i32 a) (i32 b))
  | Opcode.Shl -> shift Int32.shift_left
  | Opcode.Shr -> shift Int32.shift_right_logical
  | Opcode.Sar -> shift Int32.shift_right
  | Opcode.Fadd -> of_fl (fl a +. fl b)
  | Opcode.Fsub -> of_fl (fl a -. fl b)
  | Opcode.Fmult -> of_fl (fl a *. fl b)
  | Opcode.Fdiv -> of_fl (fl a /. fl b)

let alu_un (op : Opcode.unop) a =
  match op with
  | Opcode.Mov -> a
  | Opcode.Ineg -> of_i32 (Int32.neg (i32 a))
  | Opcode.Not -> of_i32 (Int32.lognot (i32 a))
  | Opcode.Fneg -> of_fl (-.fl a)
  | Opcode.Itof -> of_fl (Int32.to_float (i32 a))
  | Opcode.Ftoi -> of_i32 (Int32.of_float (fl a))

let alu_cmp (op : Opcode.cmpop) a b =
  let ic rel = rel (Int32.compare (i32 a) (i32 b)) 0 in
  let fc rel = rel (compare (fl a) (fl b)) 0 in
  match op with
  | Opcode.Eq -> ic ( = )
  | Opcode.Ne -> ic ( <> )
  | Opcode.Lt -> ic ( < )
  | Opcode.Le -> ic ( <= )
  | Opcode.Gt -> ic ( > )
  | Opcode.Ge -> ic ( >= )
  | Opcode.Feq -> fc ( = )
  | Opcode.Fne -> fc ( <> )
  | Opcode.Flt -> fc ( < )
  | Opcode.Fle -> fc ( <= )
  | Opcode.Fgt -> fc ( > )
  | Opcode.Fge -> fc ( >= )

(* ------------------------------------------------------------------ *)
(* Branch-condition evaluation against start-of-cycle CC/SS state      *)

let ss_done m j = Sync.equal m.sss.(j) Sync.Done

let eval_cond m ~fu (cond : Cond.t) =
  match cond with
  | Cond.Always1 -> true
  | Cond.Always2 -> false
  | Cond.Cc j -> (
    match m.ccs.(j) with
    | Some b -> b
    | None ->
      hazard m (Hazard.Undefined_cc { cc = j; fu });
      false)
  | Cond.Ss j -> ss_done m j
  | Cond.All_ss mask -> List.for_all (ss_done m) (Cond.list_of_mask mask)
  | Cond.Any_ss mask -> List.exists (ss_done m) (Cond.list_of_mask mask)

(* ------------------------------------------------------------------ *)
(* Data-parcel execution.  Reads observe start-of-cycle state; the
   produced register/memory writes are returned as pending results due
   at the end of cycle [issue + result_latency - 1].  With the research
   model's unit latency, a store's bank check happens at issue;
   deferred stores are checked when their write-back stage arrives
   (mirroring the pipelined datapath, which cannot fault before the
   write reaches memory). *)

let addr_of_sum a b = Int32.to_int (Int32.add (i32 a) (i32 b))

let exec_data m ~fu (data : Parcel.data) =
  let due = m.cycle + m.config.result_latency - 1 in
  let unit_latency = m.config.result_latency = 1 in
  let reg_result d value =
    [ { due; target = `Reg (Reg.index d); fu; value } ]
  in
  match data with
  | Parcel.Dnop -> []
  | Parcel.Dbin { op; a; b; d } ->
    reg_result d (alu_bin m ~fu op (read_operand m a) (read_operand m b))
  | Parcel.Dun { op; a; d } -> reg_result d (alu_un op (read_operand m a))
  | Parcel.Dcmp _ -> []  (* handled by [exec_compare] *)
  | Parcel.Dload { a; b; d } ->
    let addr = addr_of_sum (read_operand m a) (read_operand m b) in
    reg_result d (read_mem m ~fu addr)
  | Parcel.Dstore { a; b } ->
    let addr = Int32.to_int (i32 (read_operand m b)) in
    if unit_latency && not (accessible m ~fu addr) then begin
      hazard m (Hazard.Mem_out_of_bounds { addr; fu });
      []
    end
    else [ { due; target = `Mem addr; fu; value = read_operand m a } ]
  | Parcel.Din { port; d } ->
    let port = Int32.to_int (i32 (read_operand m port)) in
    reg_result d (read_port m ~fu port)
  | Parcel.Dout { a; port } ->
    let port_no = Int32.to_int (i32 (read_operand m port)) in
    write_port m ~fu port_no (read_operand m a);
    []

let exec_compare m ~fu (data : Parcel.data) =
  match data with
  | Parcel.Dcmp { op; a; b } ->
    [ (fu, alu_cmp op (read_operand m a) (read_operand m b)) ]
  | Parcel.Dnop | Parcel.Dbin _ | Parcel.Dun _ | Parcel.Dload _
  | Parcel.Dstore _ | Parcel.Din _ | Parcel.Dout _ ->
    []

(* ------------------------------------------------------------------ *)
(* End-of-cycle commit.  Pending results whose write-back stage is this
   cycle leave the pipeline in issue order.  Registers commit first
   (in order of first write), then memory (in order of first store),
   then condition codes — matching the machine's port priority. *)

let first_occurrences keys =
  List.fold_left
    (fun seen k -> if List.mem k seen then seen else seen @ [ k ])
    [] keys

(* The multiple-write resolution rule: the highest-numbered FU wins,
   the latest write on ties. *)
let winning_value writes =
  List.fold_left
    (fun (winner_fu, winner_value) (fu, value) ->
      if fu >= winner_fu then (fu, value) else (winner_fu, winner_value))
    (-1, Value.zero) writes
  |> snd

let commit_registers m reg_writes =
  List.iter
    (fun reg ->
      let writes =
        List.filter_map
          (fun w ->
            match w.target with
            | `Reg r when r = reg -> Some (w.fu, w.value)
            | `Reg _ | `Mem _ -> None)
          reg_writes
      in
      match writes with
      | [ (_, value) ] -> m.registers.(reg) <- value
      | writes ->
        hazard m
          (Hazard.Multiple_reg_write
             { reg = Reg.make reg; fus = List.map fst writes });
        m.registers.(reg) <- winning_value writes)
    (first_occurrences
       (List.filter_map
          (fun w ->
            match w.target with `Reg r -> Some r | `Mem _ -> None)
          reg_writes))

let commit_memory m mem_writes =
  List.iter
    (fun addr ->
      let writes =
        List.filter_map
          (fun w ->
            match w.target with
            | `Mem a when a = addr -> Some (w.fu, w.value)
            | `Mem _ | `Reg _ -> None)
          mem_writes
      in
      match writes with
      | [ (_, value) ] -> write_mem m addr value
      | writes ->
        hazard m (Hazard.Multiple_mem_write { addr; fus = List.map fst writes });
        write_mem m addr (winning_value writes))
    (first_occurrences
       (List.filter_map
          (fun w ->
            match w.target with `Mem a -> Some a | `Reg _ -> None)
          mem_writes))

(* [staged] are this cycle's unit-latency results (already bank-checked
   at issue); longer-latency results wait in [m.pending] until their
   write-back cycle, and a deferred store's bank check happens here. *)
let commit_cycle m ~staged ~compares =
  let due, still_pending =
    List.partition (fun w -> w.due <= m.cycle) m.pending
  in
  m.pending <- still_pending;
  let due =
    List.filter
      (fun w ->
        match w.target with
        | `Reg _ -> true
        | `Mem addr ->
          if accessible m ~fu:w.fu addr then true
          else begin
            hazard m (Hazard.Mem_out_of_bounds { addr; fu = w.fu });
            false
          end)
      due
  in
  let landing = staged @ due in
  commit_registers m landing;
  commit_memory m landing;
  List.iter (fun (fu, value) -> m.ccs.(fu) <- Some value) compares

(* ------------------------------------------------------------------ *)
(* One machine cycle                                                   *)

let record_trace m =
  let row =
    { Observation.cycle = m.cycle;
      pcs =
        Array.init m.n (fun fu ->
          if m.halted.(fu) then None else Some m.pcs.(fu));
      ccs = Array.copy m.ccs;
      sss = Array.copy m.sss }
  in
  m.trace <- m.trace @ [ row ]

let all_halted m = Array.for_all Fun.id m.halted

let step model m =
  record_trace m;
  let ns = n_streams model ~n:m.n in
  let streams = List.init ns (fun k -> k) in
  let program_length = Program.length m.program in
  (* 1. Fetch: the stream leader's PC selects one row; each live member
     fetches its own parcel.  A live stream whose PC left the program
     reports Fell_off_end against its sequencer and fetches halt
     parcels. *)
  let fetched =
    List.map
      (fun k ->
        let leader, last = stream_bounds model ~n:m.n k in
        let live =
          match model with
          | Per_fu | Banked -> not m.halted.(leader)
          | Global -> not (all_halted m)
        in
        if not live then (k, false, Array.make m.n Parcel.halted)
        else begin
          let pc = m.pcs.(leader) in
          let in_range = pc >= 0 && pc < program_length in
          if not in_range then
            hazard m
              (Hazard.Fell_off_end
                 { fu = seq_fu model m ~leader ~last; addr = pc });
          let parcels = Array.make m.n Parcel.halted in
          for fu = leader to last do
            if not m.halted.(fu) then
              parcels.(fu) <-
                (if in_range then (Program.row m.program pc).(fu)
                 else Parcel.halted)
          done;
          (k, true, parcels)
        end)
      streams
  in
  let stream_ctrl k =
    let leader, _ = stream_bounds model ~n:m.n k in
    let _, live, parcels = List.nth fetched k in
    if live then parcels.(leader) else Parcel.halted
  in
  let live_member k fu =
    let _, live, _ = List.nth fetched k in
    live && not m.halted.(fu)
  in
  (* 2. Branch-condition evaluation, one per live sequencer, against
     start-of-cycle CC/SS state. *)
  let taken =
    List.map
      (fun k ->
        let leader, last = stream_bounds model ~n:m.n k in
        let _, live, _ = List.nth fetched k in
        live
        &&
        match (stream_ctrl k).Parcel.control with
        | Control.Halt -> false
        | Control.Branch { cond; _ } ->
          eval_cond m ~fu:(seq_fu model m ~leader ~last) cond)
      streams
  in
  (* 3. Data execution: every live FU, in FU order, reading
     start-of-cycle registers and memory. *)
  let staged = ref [] and compares = ref [] in
  for fu = 0 to m.n - 1 do
    let k =
      match model with
      | Per_fu -> fu
      | Global -> 0
      | Banked -> if fu < m.n / 2 then 0 else 1
    in
    if live_member k fu then begin
      let _, _, parcels = List.nth fetched k in
      let data = parcels.(fu).Parcel.data in
      let writes = exec_data m ~fu data in
      let unit_latency = m.config.result_latency = 1 in
      if unit_latency then staged := !staged @ writes
      else m.pending <- m.pending @ writes;
      compares := !compares @ exec_compare m ~fu data
    end
  done;
  (* 4. End-of-cycle commit. *)
  commit_cycle m ~staged:!staged ~compares:!compares;
  (* 5. Control commit, one stream at a time: halts stop member FUs
     (their sync signals read DONE from then on, except under the
     global sequencer); branches drive each member's parcel sync value
     and install the selected next PC into every member FU. *)
  List.iteri
    (fun k taken_k ->
      let leader, last = stream_bounds model ~n:m.n k in
      let _, live, parcels = List.nth fetched k in
      if live then
        match (stream_ctrl k).Parcel.control with
        | Control.Halt ->
          for fu = leader to last do
            if not m.halted.(fu) then begin
              m.halted.(fu) <- true;
              match model with
              | Per_fu | Banked -> m.sss.(fu) <- Sync.Done
              | Global -> ()
            end
          done
        | Control.Branch _ as control ->
          (match model with
           | Global -> ()  (* sync signals have no architectural role *)
           | Per_fu | Banked ->
             for fu = leader to last do
               if not m.halted.(fu) then
                 m.sss.(fu) <- parcels.(fu).Parcel.sync
             done);
          let pc = m.pcs.(leader) in
          (match Control.resolve control ~pc ~taken:taken_k with
           | Some next ->
             for fu = leader to last do
               m.pcs.(fu) <- next
             done
           | None -> assert false))
    taken;
  m.cycle <- m.cycle + 1

(* ------------------------------------------------------------------ *)
(* Whole-program runs                                                  *)

let bank_consistent program =
  let n = Program.n_fus program in
  let half = n / 2 in
  let ok = ref true in
  for addr = 0 to Program.length program - 1 do
    let row = Program.row program addr in
    Array.iteri
      (fun fu (p : Parcel.t) ->
        let leader : Parcel.t = row.(if fu < half then 0 else half) in
        if
          not
            (Control.equal p.control leader.control
            && Sync.equal p.sync leader.sync)
        then ok := false)
      row
  done;
  !ok

let validate model program (config : Config.t) =
  (match Program.validate program config with
   | Ok () -> ()
   | Error errors ->
     invalid_arg
       ("Interp.run: invalid program:\n" ^ String.concat "\n" errors));
  match model with
  | Per_fu -> ()
  | Global ->
    if not (Program.control_consistent program) then
      invalid_arg "Interp.run: program is not control-consistent"
  | Banked ->
    let n = Program.n_fus program in
    if n < 2 || n mod 2 <> 0 then
      invalid_arg "Interp.run: the two-sequencer model needs an even FU count";
    if not (bank_consistent program) then
      invalid_arg "Interp.run: program is not bank-consistent"

let create config program =
  let n = (config : Config.t).n_fus in
  { config;
    program;
    n;
    registers = Array.make Reg.count Value.zero;
    memory = [];
    port_writes = Array.make config.n_ports [];
    pcs = Array.make n 0;
    ccs = Array.make n None;
    sss = Array.make n Sync.Busy;
    halted = Array.make n false;
    cycle = 0;
    pending = [];
    hazards = [];
    trace = [] }

(* Drain the datapath pipeline after the last FU halts: remaining
   results commit in issue order over the following "cycles". *)
let drain m =
  while m.pending <> [] do
    m.cycle <- m.cycle + 1;
    commit_cycle m ~staged:[] ~compares:[]
  done

let observation m outcome =
  { Observation.outcome;
    registers = Array.copy m.registers;
    memory =
      List.sort (fun (a, _) (b, _) -> compare a b)
        (List.filter (fun (_, v) -> not (Value.equal v Value.zero)) m.memory);
    io_out =
      List.filter_map
        (fun port ->
          match m.port_writes.(port) with
          | [] -> None
          | writes -> Some (port, writes))
        (List.init m.config.n_ports (fun p -> p));
    hazards =
      List.map (fun (cycle, h) -> (cycle, Hazard.to_string h)) m.hazards;
    trace = m.trace }

let run ?(model = Per_fu) ?(config = Config.default) ?setup program =
  validate model program config;
  let m = create config program in
  (match setup with None -> () | Some f -> f m);
  let rec loop () =
    if all_halted m then begin
      drain m;
      Run.Halted { cycles = m.cycle }
    end
    else if m.cycle >= m.config.max_cycles then
      Run.Fuel_exhausted { cycles = m.cycle }
    else begin
      step model m;
      loop ()
    end
  in
  let outcome = loop () in
  observation m outcome

let set_reg m i v = m.registers.(i) <- v
let set_mem m addr v = write_mem m addr v
