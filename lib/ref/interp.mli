(** The reference interpreter.

    A deliberately slow, straight-line implementation of the XIMD cycle
    semantics, written to be read against PAPER.md and DESIGN.md rather
    than to be fast.  Its single job is to be obviously correct, so that
    the optimised {!Ximd_core.Engine} can be judged against it in
    lockstep ({!Ximd_gen.Diff}) on any program the engine accepts.

    Hazards are always recorded, never raised.  Faults, scripted I/O
    input, watchdogs and observability are out of scope: the conformance
    surface is a plain program run on a plain machine. *)

open Ximd_isa

type model = Per_fu | Global | Banked
(** The three sequencing models: one sequencer per FU (XIMD, xsim), one
    global sequencer (VLIW, vsim), two fixed banks (TRACE-500-like,
    t500).  Kept separate from {!Ximd_core.Engine.model} so the
    reference shares no definitions with the engine under test. *)

type machine
(** A machine mid-run; exposed only so {!run}'s [setup] callback can
    preload state for unit tests. *)

val set_reg : machine -> int -> Value.t -> unit
val set_mem : machine -> int -> Value.t -> unit

val bank_consistent : Ximd_core.Program.t -> bool
(** Restated from first principles (independent of
    {!Ximd_core.Engine.bank_consistent}): every parcel shares its bank
    leader's control and sync fields. *)

val validate : model -> Ximd_core.Program.t -> Ximd_core.Config.t -> unit
(** @raise Invalid_argument under exactly the conditions the engine's
    [run] rejects: invalid program, non-control-consistent program under
    [Global], odd FU count or non-bank-consistent program under
    [Banked]. *)

val run :
  ?model:model ->
  ?config:Ximd_core.Config.t ->
  ?setup:(machine -> unit) ->
  Ximd_core.Program.t ->
  Observation.t
(** [run program] interprets [program] to completion (halt or fuel
    exhaustion) and returns everything architecturally observable.
    [model] defaults to [Per_fu]; [config] to {!Ximd_core.Config.default}
    (its hazard policy is ignored — the reference always records);
    [setup] runs once on the fresh machine before cycle 0. *)
